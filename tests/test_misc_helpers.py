"""Tests for small helpers: table rendering, validation, ladders, spectra."""

import numpy as np
import pytest

from repro.topologies.dcell import dcell_scale_ladder
from repro.topologies.hyperx import hyperx_scale_ladder
from repro.topologies.longhop import cayley_spectrum
from repro.utils.tables import records_to_columns, render_series, render_table
from repro.utils.validation import (
    require_in_range,
    require_nonnegative_int,
    require_positive_int,
    require_probability,
)


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["name", "x"], [("alpha", 1.5), ("b", 2.0)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert set(lines[2]) <= {"-", " "}
        assert "1.500" in lines[3]

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1,)])

    def test_floatfmt(self):
        text = render_table(["x"], [(1.23456,)], floatfmt=".1f")
        assert "1.2" in text and "1.23" not in text


class TestRenderSeries:
    def test_series_layout(self):
        text = render_series(
            {"curveA": [(1, 0.5), (2, 0.25)]}, "x", "y", title="fig"
        )
        assert "fig" in text
        assert "-- curveA" in text
        assert "0.250" in text


class TestRecordsToColumns:
    def test_extracts_parallel_lists(self):
        recs = [{"a": 1, "b": 2}, {"a": 3}]
        cols = records_to_columns(recs, ["a", "b"])
        assert cols["a"] == [1, 3]
        assert cols["b"] == [2, None]


class TestValidation:
    def test_positive_int(self):
        assert require_positive_int(3, "x") == 3
        with pytest.raises(ValueError):
            require_positive_int(0, "x")
        with pytest.raises(TypeError):
            require_positive_int(1.5, "x")
        with pytest.raises(TypeError):
            require_positive_int(True, "x")  # bools are not ints here

    def test_nonnegative_int(self):
        assert require_nonnegative_int(0, "x") == 0
        with pytest.raises(ValueError):
            require_nonnegative_int(-1, "x")

    def test_in_range(self):
        assert require_in_range(0.5, "x", 0, 1) == 0.5
        with pytest.raises(ValueError):
            require_in_range(2, "x", 0, 1)

    def test_probability(self):
        assert require_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            require_probability(1.5, "p")


class TestScaleLadderHelpers:
    def test_dcell_ladder(self):
        ladder = dcell_scale_ladder(3, 200)
        # (3, 0) = 3 servers, (3, 1) = 12, (3, 2) = 156 all fit.
        assert ladder == [(3, 0), (3, 1), (3, 2)]

    def test_hyperx_ladder_unique_designs(self):
        topos = hyperx_scale_ladder(16, 0.4, [16, 32, 64])
        names = [t.name for t in topos]
        assert len(names) == len(set(names))
        for t in topos:
            assert t.params["relative_bisection"] >= 0.4


class TestCayleySpectrum:
    def test_hypercube_spectrum(self):
        # Q_3: generators = unit vectors; eigenvalues are 3 - 2*popcount(s).
        gens = [1, 2, 4]
        spec = cayley_spectrum(gens, 3)
        assert spec[0] == 3
        expected = [3 - 2 * bin(s).count("1") for s in range(8)]
        assert spec.tolist() == expected

    def test_spectrum_bounds(self):
        from repro.topologies.longhop import longhop_generators

        gens = longhop_generators(5, 8)
        spec = cayley_spectrum(gens, 5)
        assert spec[0] == 8  # trivial character = degree
        assert np.all(np.abs(spec) <= 8)
        assert spec[1:].max() < 8  # connected: no repeated top eigenvalue
