"""Cross-module edge cases and failure-mode tests.

These pin down behaviors at the boundaries: minimal graphs, degenerate TMs,
multigraphs everywhere, and numerical corners.
"""

import networkx as nx
import numpy as np
import pytest

from repro.cuts import find_sparse_cut, sparsest_cut_bruteforce
from repro.throughput import solve_throughput_mwu, throughput
from repro.topologies import hyperx, make_topology
from repro.topologies.base import Topology
from repro.traffic import (
    TrafficMatrix,
    all_to_all,
    longest_matching,
    random_matching,
)


@pytest.fixture
def two_node():
    g = nx.Graph()
    g.add_edge(0, 1)
    return make_topology(g, 1, "P2", "path")


class TestMinimalGraphs:
    def test_two_node_everything(self, two_node):
        tm = all_to_all(two_node)
        # Each server sends 1/2 to the other; one arc each way: t = 2.
        assert throughput(two_node, tm).value == pytest.approx(2.0)
        lm = longest_matching(two_node)
        assert throughput(two_node, lm).value == pytest.approx(1.0)
        cut = sparsest_cut_bruteforce(two_node, lm)
        assert cut.sparsity == pytest.approx(1.0)

    def test_two_node_random_matching(self, two_node):
        tm = random_matching(two_node, seed=0)
        assert tm.demand[0, 1] == 1.0 and tm.demand[1, 0] == 1.0

    def test_triangle_lm(self):
        topo = make_topology(nx.complete_graph(3), 1, "K3", "complete")
        tm = longest_matching(topo)
        # A 3-cycle derangement: direct arcs give 1; each flow can add 0.5
        # via its 2-hop reverse path (each reverse arc is shared by two
        # indirect paths), so the exact optimum is 1.5.
        assert throughput(topo, tm).value == pytest.approx(1.5)


class TestMultigraphSupport:
    def test_multigraph_throughput_cuts_and_lm(self):
        topo = hyperx(1, 3, 2, 1)  # triangle with doubled edges
        tm = longest_matching(topo)
        t = throughput(topo, tm).value
        assert t == pytest.approx(3.0)  # exactly 2x the simple triangle's 1.5
        rep = find_sparse_cut(topo, tm)
        assert rep.best.sparsity >= t - 1e-9

    def test_multigraph_mwu(self):
        topo = hyperx(1, 3, 2, 1)
        tm = all_to_all(topo)
        exact = throughput(topo, tm).value
        approx = solve_throughput_mwu(topo, tm, epsilon=0.1).value
        assert approx <= exact + 1e-9
        assert approx >= exact * 0.6


class TestDegenerateTMs:
    def test_single_pair_tm(self, small_jellyfish):
        n = small_jellyfish.n_switches
        d = np.zeros((n, n))
        d[0, 1] = 1.0
        tm = TrafficMatrix(demand=d)
        t = throughput(small_jellyfish, tm).value
        # Single unit demand between neighbors or near-neighbors: at least
        # the degree's worth of disjoint paths is available.
        assert t >= 1.0

    def test_asymmetric_tm(self, small_jellyfish):
        # Demand in one direction only must not be limited by reverse arcs.
        n = small_jellyfish.n_switches
        d = np.zeros((n, n))
        d[0, 1:] = 1.0 / (n - 1)
        tm = TrafficMatrix(demand=d)
        t_one_way = throughput(small_jellyfish, tm).value
        both = TrafficMatrix(demand=d + d.T)
        t_both = throughput(small_jellyfish, both).value
        # Symmetric duplication cannot do better than the one-way instance.
        assert t_both <= t_one_way * (1 + 1e-9)

    def test_small_weights_scale_exactly(self, tiny_cycle):
        d = np.zeros((4, 4))
        d[0, 2] = 1e-3
        tm = TrafficMatrix(demand=d)
        t = throughput(tiny_cycle, tm).value
        assert t == pytest.approx(2e3, rel=1e-6)


class TestNumericalCorners:
    def test_throughput_result_float_protocol(self, tiny_cycle):
        res = throughput(tiny_cycle, all_to_all(tiny_cycle))
        assert float(res) == res.value

    def test_large_capacity_scaling(self, tiny_cycle):
        # Quadrupling every cable quadruples throughput exactly.
        g = nx.MultiGraph()
        for u, v in tiny_cycle.graph.edges():
            for _ in range(4):
                g.add_edge(u, v)
        big = Topology("C4x4", g, tiny_cycle.servers.copy(), "test")
        tm = all_to_all(tiny_cycle)
        assert throughput(big, tm).value == pytest.approx(
            4 * throughput(tiny_cycle, tm).value, rel=1e-9
        )

    def test_hose_utilization_zero_demand_zero_servers(self):
        # A node with no servers and no demand is fine.
        d = np.zeros((3, 3))
        d[0, 1] = 1.0
        tm = TrafficMatrix(demand=d)
        assert tm.is_hose(np.array([1, 1, 0]))
