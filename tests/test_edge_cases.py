"""Cross-module edge cases and failure-mode tests.

These pin down behaviors at the boundaries: minimal graphs, degenerate TMs,
multigraphs everywhere, and numerical corners.
"""

import networkx as nx
import numpy as np
import pytest

from repro.cuts import find_sparse_cut, sparsest_cut_bruteforce
from repro.throughput import solve_throughput_mwu, throughput
from repro.topologies import hyperx, make_topology
from repro.topologies.base import Topology
from repro.traffic import (
    TrafficMatrix,
    all_to_all,
    longest_matching,
    random_matching,
)


@pytest.fixture
def two_node():
    g = nx.Graph()
    g.add_edge(0, 1)
    return make_topology(g, 1, "P2", "path")


class TestMinimalGraphs:
    def test_two_node_everything(self, two_node):
        tm = all_to_all(two_node)
        # Each server sends 1/2 to the other; one arc each way: t = 2.
        assert throughput(two_node, tm).value == pytest.approx(2.0)
        lm = longest_matching(two_node)
        assert throughput(two_node, lm).value == pytest.approx(1.0)
        cut = sparsest_cut_bruteforce(two_node, lm)
        assert cut.sparsity == pytest.approx(1.0)

    def test_two_node_random_matching(self, two_node):
        tm = random_matching(two_node, seed=0)
        assert tm.demand[0, 1] == 1.0 and tm.demand[1, 0] == 1.0

    def test_triangle_lm(self):
        topo = make_topology(nx.complete_graph(3), 1, "K3", "complete")
        tm = longest_matching(topo)
        # A 3-cycle derangement: direct arcs give 1; each flow can add 0.5
        # via its 2-hop reverse path (each reverse arc is shared by two
        # indirect paths), so the exact optimum is 1.5.
        assert throughput(topo, tm).value == pytest.approx(1.5)


class TestMultigraphSupport:
    def test_multigraph_throughput_cuts_and_lm(self):
        topo = hyperx(1, 3, 2, 1)  # triangle with doubled edges
        tm = longest_matching(topo)
        t = throughput(topo, tm).value
        assert t == pytest.approx(3.0)  # exactly 2x the simple triangle's 1.5
        rep = find_sparse_cut(topo, tm)
        assert rep.best.sparsity >= t - 1e-9

    def test_multigraph_mwu(self):
        topo = hyperx(1, 3, 2, 1)
        tm = all_to_all(topo)
        exact = throughput(topo, tm).value
        approx = solve_throughput_mwu(topo, tm, epsilon=0.1).value
        assert approx <= exact + 1e-9
        assert approx >= exact * 0.6


class TestDegenerateTMs:
    def test_single_pair_tm(self, small_jellyfish):
        n = small_jellyfish.n_switches
        d = np.zeros((n, n))
        d[0, 1] = 1.0
        tm = TrafficMatrix(demand=d)
        t = throughput(small_jellyfish, tm).value
        # Single unit demand between neighbors or near-neighbors: at least
        # the degree's worth of disjoint paths is available.
        assert t >= 1.0

    def test_asymmetric_tm(self, small_jellyfish):
        # Demand in one direction only must not be limited by reverse arcs.
        n = small_jellyfish.n_switches
        d = np.zeros((n, n))
        d[0, 1:] = 1.0 / (n - 1)
        tm = TrafficMatrix(demand=d)
        t_one_way = throughput(small_jellyfish, tm).value
        both = TrafficMatrix(demand=d + d.T)
        t_both = throughput(small_jellyfish, both).value
        # Symmetric duplication cannot do better than the one-way instance.
        assert t_both <= t_one_way * (1 + 1e-9)

    def test_small_weights_scale_exactly(self, tiny_cycle):
        d = np.zeros((4, 4))
        d[0, 2] = 1e-3
        tm = TrafficMatrix(demand=d)
        t = throughput(tiny_cycle, tm).value
        assert t == pytest.approx(2e3, rel=1e-6)


class TestNumericalCorners:
    def test_throughput_result_float_protocol(self, tiny_cycle):
        res = throughput(tiny_cycle, all_to_all(tiny_cycle))
        assert float(res) == res.value

    def test_large_capacity_scaling(self, tiny_cycle):
        # Quadrupling every cable quadruples throughput exactly.
        g = nx.MultiGraph()
        for u, v in tiny_cycle.graph.edges():
            for _ in range(4):
                g.add_edge(u, v)
        big = Topology("C4x4", g, tiny_cycle.servers.copy(), "test")
        tm = all_to_all(tiny_cycle)
        assert throughput(big, tm).value == pytest.approx(
            4 * throughput(tiny_cycle, tm).value, rel=1e-9
        )

    def test_hose_utilization_zero_demand_zero_servers(self):
        # A node with no servers and no demand is fine.
        d = np.zeros((3, 3))
        d[0, 1] = 1.0
        tm = TrafficMatrix(demand=d)
        assert tm.is_hose(np.array([1, 1, 0]))


# Engines dispatched through throughput(); "paths" has its own signature
# and is exercised separately below.
DISPATCH_ENGINES = ("lp", "mwu", "sharded", "sim")


@pytest.fixture
def disconnected_topology():
    """Two disjoint 4-rings as one Topology (bypasses validate() — these
    tests pin what the engines do when disconnection reaches them)."""
    g = nx.Graph()
    g.add_edges_from([(0, 1), (1, 2), (2, 3), (3, 0)])
    g.add_edges_from([(4, 5), (5, 6), (6, 7), (7, 4)])
    return Topology("two-rings", g, np.ones(8, dtype=np.int64), "test")


class TestZeroDemandSemantics:
    """An all-zero TM asks 0/0 — every engine answers NaN (the safe_ratio
    convention), never a raise, so generated sweeps degrade per-instance."""

    @pytest.mark.parametrize("engine", DISPATCH_ENGINES)
    def test_zero_demand_is_nan(self, tiny_cycle, engine):
        tm = TrafficMatrix(demand=np.zeros((4, 4)))
        result = throughput(tiny_cycle, tm, engine=engine)
        assert np.isnan(result.value)
        assert result.meta["status"] == "zero-demand"
        assert result.engine == engine

    def test_zero_demand_paths_engine(self, tiny_cycle):
        from repro.throughput.llskr import llskr_exact_throughput

        result = llskr_exact_throughput(
            tiny_cycle, TrafficMatrix(demand=np.zeros((4, 4)))
        )
        assert np.isnan(result.value)
        assert result.meta["status"] == "zero-demand"

    def test_safe_ratio_conventions_anchor(self):
        # The convention these semantics mirror: 0/0 -> NaN, x/0 -> inf.
        from repro.utils.numeric import safe_ratio

        assert np.isnan(safe_ratio(0.0, 0.0))
        assert safe_ratio(1.0, 0.0) == np.inf
        assert safe_ratio(1.0, 2.0) == 0.5


class TestDisconnectedCommoditySemantics:
    """Demand across a disconnection fits 0 of itself — every engine
    answers exactly 0.0, never a raise."""

    @pytest.mark.parametrize("engine", DISPATCH_ENGINES)
    def test_cross_component_demand_is_zero(self, disconnected_topology, engine):
        tm = all_to_all(disconnected_topology)  # includes cross-ring pairs
        result = throughput(disconnected_topology, tm, engine=engine)
        assert result.value == pytest.approx(0.0, abs=1e-12)

    def test_cross_component_paths_engine(self, disconnected_topology):
        from repro.throughput.llskr import llskr_exact_throughput

        result = llskr_exact_throughput(
            disconnected_topology, all_to_all(disconnected_topology)
        )
        assert result.value == 0.0
        assert result.meta["status"] == "unroutable-commodity"

    @pytest.mark.parametrize("engine", ("lp", "mwu", "sim"))
    def test_failure_overlay_disconnection(self, tiny_cycle, engine):
        # The whatif shape: a compiled overlay that cuts node 0 off.
        ag = tiny_cycle.compile()
        aids = ag.arc_ids(np.array([0, 0]), np.array([1, 3]))
        cut = ag.with_failed_arcs(aids, symmetric=True)
        result = throughput(cut, all_to_all(tiny_cycle), engine=engine)
        assert result.value == pytest.approx(0.0, abs=1e-12)

    def test_within_component_demand_still_solves(self, disconnected_topology):
        # Disconnection only zeroes demands that cross it.
        n = disconnected_topology.n_switches
        d = np.zeros((n, n))
        d[0, 2] = 1.0  # same ring
        tm = TrafficMatrix(demand=d)
        for engine in DISPATCH_ENGINES:
            assert throughput(
                disconnected_topology, tm, engine=engine
            ).value > 0.0
