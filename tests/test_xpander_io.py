"""Tests for the Xpander family and topology serialization."""

import networkx as nx
import numpy as np
import pytest

from repro.topologies import hypercube, hyperx, jellyfish
from repro.topologies.io import (
    load_topology,
    save_topology,
    topology_from_json,
    topology_to_edgelist,
    topology_to_json,
)
from repro.topologies.properties import spectral_gap
from repro.topologies.xpander import k_lift, xpander
from repro.utils.rng import ensure_rng


class TestXpander:
    def test_sizes_and_regularity(self):
        t = xpander(degree=4, lift=3, seed=0)
        assert t.n_switches == 5 * 3
        assert np.all(t.degree_sequence() == 4)
        assert t.is_connected()

    def test_lift_one_is_complete_graph(self):
        t = xpander(degree=3, lift=1, seed=0)
        assert nx.is_isomorphic(t.graph, nx.complete_graph(4))

    def test_k_lift_preserves_degrees(self):
        base = nx.complete_graph(5)
        lifted = k_lift(base, 4, ensure_rng(0))
        assert lifted.number_of_nodes() == 20
        assert all(d == 4 for _, d in lifted.degree())

    def test_expansion_comparable_to_random(self):
        xp = xpander(degree=4, lift=8, seed=1)  # 40 switches
        jf = jellyfish(40, 4, seed=1)
        assert spectral_gap(xp) > 0.5 * spectral_gap(jf)

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            xpander(degree=1, lift=2)

    def test_seed_reproducible(self):
        a = xpander(4, 3, seed=9)
        b = xpander(4, 3, seed=9)
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())


class TestTopologyIO:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: hypercube(3),
            lambda: hyperx(2, 3, 2, 1),  # multigraph
            lambda: jellyfish(12, 3, seed=0),
        ],
    )
    def test_json_roundtrip(self, builder):
        topo = builder()
        back = topology_from_json(topology_to_json(topo))
        assert back.name == topo.name
        assert back.n_switches == topo.n_switches
        assert back.n_links == topo.n_links
        assert np.array_equal(back.servers, topo.servers)
        assert np.array_equal(back.degree_sequence(), topo.degree_sequence())

    def test_file_roundtrip(self, tmp_path):
        topo = hypercube(3)
        path = tmp_path / "hc3.json"
        save_topology(topo, path)
        back = load_topology(path)
        assert sorted(back.graph.edges()) == sorted(topo.graph.edges())

    def test_bad_version_rejected(self):
        import json

        payload = json.loads(topology_to_json(hypercube(2)))
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            topology_from_json(json.dumps(payload))

    def test_edgelist_format(self):
        topo = hypercube(2)
        text = topology_to_edgelist(topo)
        lines = text.strip().splitlines()
        assert lines[0].startswith("# topology:")
        edge_lines = [l for l in lines if not l.startswith("#")]
        assert len(edge_lines) == topo.n_links
        assert lines[-1].startswith("# servers:")

    def test_roundtrip_preserves_throughput(self):
        from repro.throughput import throughput
        from repro.traffic import longest_matching

        topo = jellyfish(10, 3, seed=3)
        back = topology_from_json(topology_to_json(topo))
        tm = longest_matching(topo)
        assert throughput(back, tm).value == pytest.approx(
            throughput(topo, tm).value, rel=1e-9
        )
