"""Differential test harness: the simulator against the LP optimum.

The ``sim`` engine is an *independent second implementation* of
throughput — different algorithm (water filling vs LP), different code
path (route compiler + allocator vs sparse LP assembly) — which makes it
a differential oracle for every engine.  Two properties are fuzzed over
seeded random instances, on both cache backends, across serial, pooled,
and warm (cache-hit) runs:

* **Sandwich**: sim <= lp <= mwu/(1-eps)^3 on every instance.  The left
  inequality is structural (the allocation is a feasible flow); the right
  is MWU's certified guarantee.  A violation of either means one of the
  three implementations mis-solved the instance.
* **Single-bottleneck equality**: on instance families where the max-min
  fair ECMP allocation is provably optimal (uniform star, path, ring —
  symmetric instances whose LP optimum saturates every subflow's
  bottleneck at a common level), sim must equal lp to solver accuracy.

Instance counts satisfy the PR's acceptance floor: 100+ seeded instances
per cache backend (jsonl + sqlite), every one holding the sandwich.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.batch import BatchSolver, SolveRequest
from repro.batch.cache import make_cache
from repro.topologies.base import Topology, make_topology
from repro.topologies.jellyfish import jellyfish
from repro.traffic import TrafficMatrix, all_to_all
from repro.traffic.synthetic import random_matching
from repro.utils.rng import ensure_rng

#: Coarse MWU accuracy: fast, and the (1-eps)^3 guarantee still yields a
#: valid upper bound for the sandwich's right side.
EPSILON = 0.3
UPPER_FACTOR = (1.0 - EPSILON) ** 3

#: Structural inequalities may drift only by accumulated float noise.
SLACK = 1e-9

N_RANDOM_INSTANCES = 100


def _random_instances(seed: int, count: int) -> list:
    """``count`` seeded (topology, tm) instances: small jellyfish graphs
    under a mix of A2A and random-matching TMs (deterministic in seed)."""
    rng = ensure_rng(seed)
    instances = []
    while len(instances) < count:
        n = int(rng.integers(8, 15))
        d = int(rng.integers(3, 5))
        if (n * d) % 2:
            n += 1
        topo = jellyfish(n, d, seed=rng)
        which = len(instances) % 3
        if which == 0:
            tm = all_to_all(topo)
        else:
            tm = random_matching(topo, n_matchings=which, seed=rng)
        if tm.total_demand() <= 0:  # pragma: no cover - RM is never empty
            continue
        instances.append((topo, tm))
    return instances


def _sandwich_requests(instances) -> list:
    requests = []
    for i, (topo, tm) in enumerate(instances):
        requests.append(SolveRequest(topo, tm, engine="sim", tag=f"sim:{i}"))
        requests.append(SolveRequest(topo, tm, engine="lp", tag=f"lp:{i}"))
        requests.append(
            SolveRequest(
                topo, tm, engine="mwu", params={"epsilon": EPSILON}, tag=f"mwu:{i}"
            )
        )
    return requests


def _values(outcomes) -> dict:
    return {o.tag: o.require().value for o in outcomes}


def _assert_sandwich(values: dict, count: int) -> None:
    for i in range(count):
        sim, lp = values[f"sim:{i}"], values[f"lp:{i}"]
        mwu_upper = values[f"mwu:{i}"] / UPPER_FACTOR
        assert sim <= lp * (1 + SLACK), f"instance {i}: sim {sim} > lp {lp}"
        assert lp <= mwu_upper * (1 + SLACK), (
            f"instance {i}: lp {lp} > mwu upper {mwu_upper}"
        )
        assert sim > 0, f"instance {i}: sim not positive"


@pytest.fixture(scope="module")
def cold_sandwich():
    """One serial cold solve of the full instance set, shared by both
    cache-backend parametrizations (the cold values are backend-
    independent; what differs per backend is the warm read-back path)."""
    instances = _random_instances(seed=2024, count=N_RANDOM_INSTANCES)
    requests = _sandwich_requests(instances)
    with BatchSolver(workers=1) as solver:
        outcomes = solver.solve_many(requests)
    return instances, requests, outcomes


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
class TestDifferentialSandwich:
    def test_sandwich_cold_then_warm(self, backend, tmp_path, cold_sandwich):
        instances, requests, outcomes = cold_sandwich
        cold = _values(outcomes)
        _assert_sandwich(cold, len(instances))

        # Populate this backend with the cold results, then rerun warm on
        # a fresh solver: zero solves, bit-identical values (the cache
        # round-trip preserves every engine's result exactly).
        cache = make_cache(tmp_path / "cache", backend=backend)
        for req, outcome in zip(requests, outcomes):
            cache.put(req.key, outcome.require())
        with BatchSolver(
            workers=1, cache=make_cache(tmp_path / "cache", backend=backend)
        ) as solver:
            warm_outcomes = solver.solve_many(_sandwich_requests(instances))
            assert solver.stats()["solved"] == 0
            assert all(o.from_cache for o in warm_outcomes)
            warm = _values(warm_outcomes)
        assert warm == cold  # dict equality: bit-identical, no tolerance
        _assert_sandwich(warm, len(instances))

    def test_pooled_matches_serial(self, backend, tmp_path):
        # A subset through a worker pool: pooled results must be
        # bit-identical to serial ones (engines are deterministic and the
        # pool payload round-trip is lossless).
        instances = _random_instances(seed=77, count=12)
        with BatchSolver(workers=1) as solver:
            serial = _values(solver.solve_many(_sandwich_requests(instances)))
        cache = make_cache(tmp_path / "cache", backend=backend)
        with BatchSolver(workers=2, cache=cache) as solver:
            pooled = _values(solver.solve_many(_sandwich_requests(instances)))
        assert pooled == serial
        _assert_sandwich(pooled, len(instances))


def _single_bottleneck_instances() -> list:
    """Instances where max-min fair ECMP is provably LP-optimal.

    Uniform symmetric families whose every commodity meets its bottleneck
    at the same filling level: the water-filling allocation saturates the
    same cut the LP does, so sim == lp exactly.
    """
    out = []
    star = make_topology(
        nx.star_graph(4),
        servers=np.array([0, 1, 1, 1, 1]),
        name="star5",
        family="star",
    )
    out.append(("star", star, all_to_all(star)))
    path = make_topology(
        nx.path_graph(3), servers=1, name="p3", family="path"
    )
    out.append(("path", path, all_to_all(path)))
    for n in (4, 6, 8):
        ring = make_topology(
            nx.cycle_graph(n), servers=1, name=f"c{n}", family="ring"
        )
        out.append((f"ring{n}", ring, all_to_all(ring)))
    return out


class TestSingleBottleneckEquality:
    def _requests(self):
        reqs = []
        for name, topo, tm in _single_bottleneck_instances():
            reqs.append(SolveRequest(topo, tm, engine="sim", tag=f"sim:{name}"))
            reqs.append(SolveRequest(topo, tm, engine="lp", tag=f"lp:{name}"))
        return reqs

    def _assert_equal(self, values):
        for name, _, _ in _single_bottleneck_instances():
            assert values[f"sim:{name}"] == pytest.approx(
                values[f"lp:{name}"], rel=1e-9
            ), name

    def test_serial(self):
        with BatchSolver(workers=1) as solver:
            self._assert_equal(_values(solver.solve_many(self._requests())))

    def test_pooled(self):
        with BatchSolver(workers=2) as solver:
            self._assert_equal(_values(solver.solve_many(self._requests())))

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_warm(self, backend, tmp_path):
        cache = make_cache(tmp_path / "cache", backend=backend)
        with BatchSolver(workers=1, cache=cache) as solver:
            cold = _values(solver.solve_many(self._requests()))
        with BatchSolver(
            workers=1, cache=make_cache(tmp_path / "cache", backend=backend)
        ) as solver:
            outcomes = solver.solve_many(self._requests())
            assert solver.stats()["solved"] == 0
            warm = _values(outcomes)
        assert warm == cold
        self._assert_equal(warm)


class TestDifferentialDeterminism:
    def test_instance_generator_is_seed_stable(self):
        a = _random_instances(seed=5, count=10)
        b = _random_instances(seed=5, count=10)
        for (ta, tma), (tb, tmb) in zip(a, b):
            assert ta.compile().digest == tb.compile().digest
            assert tma.content_digest() == tmb.content_digest()

    def test_sim_values_are_rerun_stable(self):
        instances = _random_instances(seed=11, count=6)
        def run():
            with BatchSolver(workers=1) as solver:
                reqs = [
                    SolveRequest(t, tm, engine="sim", tag=str(i))
                    for i, (t, tm) in enumerate(instances)
                ]
                return _values(solver.solve_many(reqs))
        assert run() == run()


def test_topology_type_is_exported():
    # Guard: the harness's instances are real Topology objects, so every
    # engine path (including paths-style key fingerprinting) stays open.
    assert all(
        isinstance(t, Topology) for t, _ in _random_instances(seed=1, count=2)
    )


def test_traffic_matrix_mix_covers_a2a_and_matchings():
    instances = _random_instances(seed=3, count=6)
    kinds = {type(tm) for _, tm in instances}
    assert kinds == {TrafficMatrix} or all(
        isinstance(tm, TrafficMatrix) for _, tm in instances
    )
