"""Unit and property tests for the fluid simulator (repro.sim).

Covers the allocator's defining invariants (capacity feasibility, max-min
fairness via the saturated-bottleneck certificate, permutation invariance,
bit-identical reruns), the route compiler's determinism and KSP
properties, the engine's batch/cache integration, and the time-stepped
fluid layer's convergence and departure dynamics.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core import ArcGraph, RouteSet, as_arcgraph, compile_routes, k_shortest_routes
from repro.sim import FluidSimulation, maxmin_allocate, resolve_sim_params
from repro.throughput.mcf import throughput
from repro.topologies.base import make_topology
from repro.topologies.jellyfish import jellyfish
from repro.traffic import all_to_all
from repro.utils.rng import ensure_rng


def _random_instance(seed: int):
    rng = ensure_rng(seed)
    n = int(rng.integers(8, 17))
    d = int(rng.integers(3, 5))
    if (n * d) % 2:
        n += 1
    topo = jellyfish(n, d, seed=rng)
    return topo, all_to_all(topo)


# ------------------------------------------------------------ route compiler


class TestCompileRoutes:
    def test_ecmp_fractions_conserve_unit_flow(self, tiny_cycle):
        tm = all_to_all(tiny_cycle)
        routes = compile_routes(tiny_cycle, tm, routing="ecmp")
        assert routes.n_subflows == routes.n_commodities
        # Each subflow's net outflow at its source is exactly 1.
        ag = as_arcgraph(tiny_cycle)
        inc = routes.incidence.tocsc()
        for f in range(routes.n_subflows):
            col = inc.getcol(f)
            arcs = col.indices
            fracs = col.data
            src = routes.srcs[routes.sub_commodity[f]]
            out_at_src = fracs[ag.tails[arcs] == src].sum()
            in_at_src = fracs[ag.heads[arcs] == src].sum()
            assert out_at_src - in_at_src == pytest.approx(1.0)

    def test_digest_independent_of_build_order(self):
        g1 = nx.Graph()
        g1.add_edges_from([(0, 1), (1, 2), (2, 3), (3, 0)])
        g2 = nx.Graph()
        g2.add_edges_from([(3, 0), (2, 3), (0, 1), (2, 1)])
        t1 = make_topology(g1, servers=1, name="a", family="ring")
        t2 = make_topology(g2, servers=1, name="b", family="ring")
        tm = all_to_all(t1)
        for routing in ("ecmp", "ksp"):
            d1 = compile_routes(t1, tm, routing=routing, k=3).content_digest()
            d2 = compile_routes(t2, tm, routing=routing, k=3).content_digest()
            assert d1 == d2

    def test_ksp_paths_sorted_loopless_distinct(self, small_hypercube):
        ag = as_arcgraph(small_hypercube)
        paths = k_shortest_routes(ag, 0, 7, 6)
        assert 1 <= len(paths) <= 6
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)
        for p in paths:
            assert p[0] == 0 and p[-1] == 7
            assert len(set(p)) == len(p)  # loopless
        assert len(set(paths)) == len(paths)  # distinct

    def test_ksp_respects_failed_arcs(self, tiny_cycle):
        ag = as_arcgraph(tiny_cycle)
        aids = ag.arc_ids(np.array([0]), np.array([1]))
        cut = ag.with_failed_arcs(aids, symmetric=True)
        paths = k_shortest_routes(cut, 0, 1, 4)
        assert paths == [(0, 3, 2, 1)]

    def test_unroutable_commodity_has_no_subflows(self, tiny_cycle):
        ag = as_arcgraph(tiny_cycle)
        aids = ag.arc_ids(np.array([0, 1, 0, 3]), np.array([1, 0, 3, 0]))
        cut = ag.with_failed_arcs(aids, symmetric=False)
        routes = compile_routes(cut, all_to_all(tiny_cycle))
        routable = routes.routable()
        assert not routable.all() and routable.any()
        assert routes.subflow_counts()[~routable].sum() == 0

    def test_rejects_bad_inputs(self, tiny_cycle):
        tm = all_to_all(tiny_cycle)
        with pytest.raises(ValueError, match="routing"):
            compile_routes(tiny_cycle, tm, routing="spf")
        with pytest.raises(ValueError, match="k must be"):
            compile_routes(tiny_cycle, tm, routing="ksp", k=0)
        with pytest.raises(ValueError, match="self-commodities"):
            compile_routes(
                tiny_cycle,
                (np.array([1]), np.array([1]), np.array([1.0])),
            )


# ---------------------------------------------------------------- allocator


class TestAllocatorInvariants:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("routing", ["ecmp", "ksp"])
    def test_capacity_feasible_on_every_arc(self, seed, routing):
        topo, tm = _random_instance(seed)
        ag = as_arcgraph(topo)
        routes = compile_routes(ag, tm, routing=routing, k=3)
        alloc = maxmin_allocate(routes, ag.caps)
        assert np.all(alloc.arc_load <= ag.caps * (1 + 1e-9))
        assert np.all(alloc.levels >= 0)
        assert alloc.value <= alloc.ratios.min() + 1e-12

    @pytest.mark.parametrize("seed", range(8))
    def test_maxmin_fairness_certificate(self, seed):
        # Max-min optimality witness: every subflow crosses a saturated
        # arc on which no other subflow has a higher level — so raising it
        # requires lowering a subflow at most as high.
        topo, tm = _random_instance(seed)
        ag = as_arcgraph(topo)
        routes = compile_routes(ag, tm)
        alloc = maxmin_allocate(routes, ag.caps)
        inc = routes.incidence.tocsc()
        arc_sat = np.isclose(alloc.arc_load, ag.caps, rtol=1e-9)
        row_max_level = np.full(routes.n_arcs, -np.inf)
        csr = routes.incidence.tocsr()
        for a in range(routes.n_arcs):
            subs = csr.indices[csr.indptr[a] : csr.indptr[a + 1]]
            if subs.size:
                row_max_level[a] = alloc.levels[subs].max()
        for f in range(routes.n_subflows):
            arcs = inc.getcol(f).indices
            certificate = arc_sat[arcs] & (
                alloc.levels[f] >= row_max_level[arcs] - 1e-9
            )
            assert certificate.any(), f"subflow {f} has no bottleneck witness"

    @pytest.mark.parametrize("seed", range(6))
    def test_permutation_invariance_of_commodity_order(self, seed):
        topo, tm = _random_instance(seed)
        ag = as_arcgraph(topo)
        routes = compile_routes(ag, tm)
        alloc = maxmin_allocate(routes, ag.caps)
        rng = ensure_rng(seed + 1000)
        perm = rng.permutation(routes.n_commodities)
        inv = np.empty_like(perm)
        inv[perm] = np.arange(perm.size)
        # Rebuild the same route set with commodities (and their subflow
        # columns) permuted; the per-commodity outcome must be identical.
        order = np.argsort(inv[routes.sub_commodity], kind="stable")
        shuffled = RouteSet(
            n_arcs=routes.n_arcs,
            srcs=routes.srcs[perm],
            dsts=routes.dsts[perm],
            demands=routes.demands[perm],
            sub_commodity=inv[routes.sub_commodity][order],
            sub_weight=routes.sub_weight[order],
            incidence=routes.incidence.tocsc()[:, order].tocsr(),
            routing=routes.routing,
            k=routes.k,
        )
        alloc2 = maxmin_allocate(shuffled, ag.caps)
        assert alloc2.value == pytest.approx(alloc.value, abs=1e-12)
        np.testing.assert_allclose(
            alloc2.ratios, alloc.ratios[perm], rtol=0, atol=1e-12
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_bit_identical_reruns(self, seed):
        topo, tm = _random_instance(seed)
        ag = as_arcgraph(topo)
        runs = []
        for _ in range(2):
            routes = compile_routes(ag, tm)
            alloc = maxmin_allocate(routes, ag.caps)
            runs.append((routes.content_digest(), alloc))
        assert runs[0][0] == runs[1][0]
        assert runs[0][1].value == runs[1][1].value  # bit-identical, no tol
        assert np.array_equal(runs[0][1].levels, runs[1][1].levels)
        assert np.array_equal(runs[0][1].ratios, runs[1][1].ratios)

    def test_progressive_filling_on_shared_bottleneck(self):
        # Two commodities share arc 0->1 (cap 1); one also continues over
        # 1->2 (cap 3).  Max-min: both get 1/2 on the shared bottleneck.
        ag = ArcGraph.from_arrays(
            3, np.array([0, 1]), np.array([1, 2]), np.array([1.0, 3.0])
        )
        routes = compile_routes(
            ag, (np.array([0, 0]), np.array([1, 2]), np.array([1.0, 1.0]))
        )
        alloc = maxmin_allocate(routes, ag.caps)
        np.testing.assert_allclose(alloc.ratios, [0.5, 0.5])
        assert alloc.rounds == 1

    def test_weighted_demands_fill_proportionally(self):
        # Demands 3 and 1 through one cap-1 arc: levels equalize, rates
        # split 3/4 vs 1/4.
        ag = ArcGraph.from_arrays(
            2, np.array([0]), np.array([1]), np.array([1.0])
        )
        routes = compile_routes(
            ag, (np.array([0, 0]), np.array([1, 1]), np.array([3.0, 1.0]))
        )
        alloc = maxmin_allocate(routes, ag.caps)
        np.testing.assert_allclose(alloc.rates, [0.75, 0.25])
        np.testing.assert_allclose(alloc.ratios, [0.25, 0.25])


# ------------------------------------------------------------------- engine


class TestSimEngine:
    def test_resolve_params_freezes_routing_and_drops_stray_k(self):
        assert resolve_sim_params({}) == {"routing": "ecmp"}
        assert resolve_sim_params({"k": 5}) == {"routing": "ecmp"}
        assert resolve_sim_params({"routing": "ksp"}) == {"routing": "ksp", "k": 4}
        assert resolve_sim_params({"routing": "ksp", "k": 2}) == {
            "routing": "ksp",
            "k": 2,
        }
        with pytest.raises(ValueError, match="routing"):
            resolve_sim_params({"routing": "bogus"})

    def test_env_knobs_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ROUTING", "ksp")
        monkeypatch.setenv("REPRO_SIM_K", "2")
        assert resolve_sim_params({}) == {"routing": "ksp", "k": 2}

    def test_engine_metadata_and_dispatch(self, tiny_cycle):
        result = throughput(tiny_cycle, all_to_all(tiny_cycle), engine="sim")
        assert result.engine == "sim"
        assert result.meta["status"] == "ok"
        assert result.meta["routing"] == "ecmp"
        assert result.n_variables > 0 and result.n_constraints > 0

    def test_sim_equals_lp_on_symmetric_fixtures(self, tiny_cycle, tiny_star):
        for topo in (tiny_cycle, tiny_star):
            tm = all_to_all(topo)
            sim = throughput(topo, tm, engine="sim").value
            lp = throughput(topo, tm, engine="lp").value
            assert sim == pytest.approx(lp, rel=1e-9)

    def test_ksp_engine_below_lp(self, tiny_cycle):
        tm = all_to_all(tiny_cycle)
        sim = throughput(tiny_cycle, tm, engine="sim", routing="ksp", k=4)
        lp = throughput(tiny_cycle, tm, engine="lp")
        assert sim.value <= lp.value * (1 + 1e-9)
        assert sim.meta["k"] == 4

    def test_accepts_bare_arcgraph(self, tiny_cycle):
        ag = as_arcgraph(tiny_cycle)
        tm = all_to_all(tiny_cycle)
        from_topo = throughput(tiny_cycle, tm, engine="sim").value
        from_ag = throughput(ag, tm, engine="sim").value
        assert from_ag == from_topo


# -------------------------------------------------------------------- fluid


class TestFluidSimulation:
    def test_static_population_matches_engine_allocation(self, tiny_cycle):
        sim = FluidSimulation(tiny_cycle)
        for u in range(4):
            for v in range(4):
                if u != v:
                    sim.add_flow(u, v, volume=1000.0)
        rates = sim.fair_rates()
        # One flow per pair on C4: symmetric, every flow gets 1/2.
        assert set(round(r, 9) for r in rates.values()) == {0.5}

    def test_flows_drain_and_depart(self, tiny_cycle):
        sim = FluidSimulation(tiny_cycle)
        fid = sim.add_flow(0, 2, volume=2.0)
        steps = sim.run_until_drained(dt=0.5)
        assert sim.n_active == 0
        assert steps >= 2
        done = sim.departed[0]
        assert done.flow_id == fid
        assert done.delivered == pytest.approx(2.0)
        assert done.departed_at == pytest.approx(sim.now)

    def test_departure_frees_capacity(self, tiny_cycle):
        sim = FluidSimulation(tiny_cycle)
        sim.add_flow(0, 1, volume=0.25)  # drains after the first step
        survivor = sim.add_flow(1, 0, volume=100.0)
        r0 = sim.fair_rates()[survivor]
        sim.step(1.0)
        assert sim.n_active == 1
        r1 = sim.fair_rates()[survivor]
        assert r1 >= r0  # freed capacity can only help

    def test_link_delay_throttles_ramp_up(self, tiny_cycle):
        fast = FluidSimulation(tiny_cycle, link_delay=0.0)
        slow = FluidSimulation(tiny_cycle, link_delay=4.0)
        for sim in (fast, slow):
            sim.add_flow(0, 2, volume=1e9)
            sim.step(1.0)
        f = fast.active_flows()[0].rate
        s = slow.active_flows()[0].rate
        assert s < f
        # The lagged rate converges to the fair share from below.
        for _ in range(200):
            slow.step(1.0)
        assert slow.active_flows()[0].rate == pytest.approx(f, rel=1e-3)

    def test_deterministic_trajectories(self, small_hypercube):
        def run():
            sim = FluidSimulation(small_hypercube, link_delay=1.0)
            rng = ensure_rng(3)
            log = []
            for i in range(30):
                pair = rng.integers(0, 8, size=2)
                if pair[0] != pair[1]:
                    sim.add_flow(int(pair[0]), int(pair[1]), 1.0 + i % 3)
                sim.step(0.5)
                log.append((sim.n_active, sim.now))
            sim.run_until_drained(dt=0.5)
            return log, [f.departed_at for f in sim.departed]

        assert run() == run()  # bit-identical, no tolerance

    def test_rejects_degenerate_flows(self, tiny_cycle):
        sim = FluidSimulation(tiny_cycle)
        with pytest.raises(ValueError, match="volume"):
            sim.add_flow(0, 1, volume=0.0)
        with pytest.raises(ValueError, match="endpoints"):
            sim.add_flow(2, 2, volume=1.0)
        with pytest.raises(ValueError, match="dt"):
            sim.step(0.0)
