"""Tests for equipment matching, relative throughput, and scale config."""

import math

import numpy as np
import pytest

from repro.batch import SolveOutcome
from repro.evaluation import (
    SCALES,
    relative_path_length,
    relative_throughput,
    same_equipment_random_graph,
    scale_from_env,
)
from repro.evaluation.relative import relative_throughput_many
from repro.throughput.lp import ThroughputResult


class _FakeStreamSolver:
    """Duck-typed stand-in for BatchSolver's submit/iter_outcomes contract,
    returning a scripted value per solve (for edge-case math tests)."""

    def __init__(self, values):
        self._values = iter(values)
        self._queue = []

    @property
    def pending_outcomes(self):
        return len(self._queue)

    def submit(self, request):
        self._queue.append(
            SolveOutcome(
                tag=request.tag,
                result=ThroughputResult(value=next(self._values), engine="lp"),
            )
        )

    def iter_outcomes(self):
        while self._queue:
            yield self._queue.pop(0)

    def drain(self):
        n = len(self._queue)
        self._queue.clear()
        return n
from repro.evaluation.experiments.factories import a2a_factory, lm_factory
from repro.topologies import dragonfly, fat_tree, hypercube, jellyfish, slimfly
from repro.throughput import throughput
from repro.traffic import all_to_all


class TestSameEquipment:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: hypercube(4),
            lambda: fat_tree(4),
            lambda: dragonfly(1),
            lambda: jellyfish(12, 3, seed=0),
        ],
    )
    def test_per_node_equipment_preserved(self, builder):
        topo = builder()
        rand = same_equipment_random_graph(topo, seed=1)
        assert np.array_equal(rand.degree_sequence(), topo.degree_sequence())
        assert np.array_equal(rand.servers, topo.servers)
        assert rand.n_links == topo.n_links
        assert rand.is_connected()

    def test_simple_graph(self):
        topo = hypercube(4)
        rand = same_equipment_random_graph(topo, seed=2)
        assert not any(u == v for u, v in rand.graph.edges())
        seen = set()
        for u, v in rand.graph.edges():
            key = (min(u, v), max(u, v))
            assert key not in seen
            seen.add(key)

    def test_seed_reproducible(self):
        topo = hypercube(4)
        a = same_equipment_random_graph(topo, seed=5)
        b = same_equipment_random_graph(topo, seed=5)
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())

    def test_actually_randomizes(self):
        topo = hypercube(4)
        rand = same_equipment_random_graph(topo, seed=3)
        assert sorted(rand.graph.edges()) != sorted(topo.graph.edges())


class TestRelativeThroughput:
    def test_random_graph_relative_is_near_1(self):
        # A random graph measured against random graphs ~ 1 (the Jellyfish
        # self-normalization of the paper).
        topo = jellyfish(20, 4, seed=0)
        res = relative_throughput(topo, a2a_factory, samples=3, seed=1)
        assert res.relative == pytest.approx(1.0, abs=0.2)

    def test_result_fields(self):
        topo = hypercube(4)
        res = relative_throughput(topo, lm_factory, samples=2, seed=0)
        assert res.n_samples == 2
        assert len(res.random_absolute_values) == 2
        assert res.relative == pytest.approx(
            res.absolute / np.mean(res.random_absolute_values)
        )

    def test_absolute_matches_direct_call(self):
        topo = hypercube(4)
        res = relative_throughput(topo, a2a_factory, samples=1, seed=0)
        direct = throughput(topo, all_to_all(topo)).value
        assert res.absolute == pytest.approx(direct, rel=1e-9)

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            relative_throughput(hypercube(3), a2a_factory, samples=0)

    def test_invalid_samples_rejected_before_any_solve(self):
        # A bad spec anywhere in the sweep must fail fast — no np.mean([])
        # NaN + RuntimeWarning, and no LPs wasted on the specs before it.
        topo = hypercube(3)

        class _ExplodingSolver:
            def solve_many(self, requests):
                raise AssertionError("solved before validation")

        with pytest.raises(ValueError, match="samples must be >= 1"):
            relative_throughput_many(
                [(topo, a2a_factory, 2, 0), (topo, a2a_factory, 0, 0)],
                solver=_ExplodingSolver(),
            )

    def test_zero_over_zero_relative_is_nan_not_inf(self):
        # absolute == 0 and random mean == 0: the comparison is undefined;
        # reporting inf would claim the topology beats the baseline.
        topo = hypercube(3)

        res = relative_throughput_many(
            [(topo, a2a_factory, 2, 0)], solver=_FakeStreamSolver([0.0, 0.0, 0.0])
        )[0]
        assert math.isnan(res.relative)
        assert res.absolute == 0.0 and res.random_absolute_mean == 0.0

    def test_zero_baseline_with_positive_absolute_is_inf(self):
        topo = hypercube(3)
        res = relative_throughput_many(
            [(topo, a2a_factory, 2, 0)], solver=_FakeStreamSolver([1.0, 0.0, 0.0])
        )[0]
        assert res.relative == np.inf


class TestRelativePathLength:
    def test_slimfly_shorter_than_random(self):
        assert relative_path_length(slimfly(5), samples=2, seed=0) < 0.97

    def test_random_graph_about_1(self):
        topo = jellyfish(24, 4, seed=1)
        assert relative_path_length(topo, samples=3, seed=2) == pytest.approx(
            1.0, abs=0.12
        )


class TestScaleConfig:
    def test_default_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_from_env().name == "small"

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert scale_from_env().name == "medium"

    def test_invalid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError):
            scale_from_env()

    def test_profiles_monotone(self):
        assert (
            SCALES["small"].max_servers
            < SCALES["medium"].max_servers
            < SCALES["large"].max_servers
        )
