"""Property-based tests (hypothesis) for core invariants.

These encode the paper's mathematical structure as executable properties:
cut >= throughput, Theorem 2, scale inversion, monotonicity under capacity
addition, hose algebra, and equipment preservation.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cuts import cut_sparsity, sparsest_cut_bruteforce
from repro.evaluation import same_equipment_random_graph
from repro.topologies import jellyfish, make_topology
from repro.topologies.base import Topology
from repro.traffic import TrafficMatrix, all_to_all, longest_matching, random_matching
from repro.throughput import throughput, volumetric_upper_bound
from repro.utils.rng import permutation_avoiding_fixed_points

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_topology(draw):
    """A connected random regular topology, 6-14 switches."""
    n = draw(st.integers(min_value=6, max_value=14))
    d = draw(st.integers(min_value=2, max_value=4))
    d = min(d, n - 1)
    if (n * d) % 2:
        n += 1
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return jellyfish(n, d, seed=seed)


@st.composite
def hose_tm_for(draw, topo: Topology):
    """A random hose-feasible TM on ``topo``."""
    n = topo.n_switches
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    demand = rng.random((n, n)) * (rng.random((n, n)) < 0.5)
    np.fill_diagonal(demand, 0.0)
    if demand.sum() == 0:
        demand[0, 1] = 1.0
    tm = TrafficMatrix(demand=demand, kind="random")
    return tm.normalized_hose(topo.servers)


class TestFlowInvariants:
    @SETTINGS
    @given(data=st.data())
    def test_scale_inversion(self, data):
        topo = data.draw(small_topology())
        tm = data.draw(hose_tm_for(topo))
        c = data.draw(st.floats(min_value=0.25, max_value=4.0))
        t1 = throughput(topo, tm).value
        t2 = throughput(topo, tm.scaled(c)).value
        assert t2 == pytest.approx(t1 / c, rel=1e-4)

    @SETTINGS
    @given(data=st.data())
    def test_theorem2_lower_bound(self, data):
        topo = data.draw(small_topology())
        tm = data.draw(hose_tm_for(topo))
        lb = throughput(topo, all_to_all(topo)).value / 2.0
        assert throughput(topo, tm).value >= lb * (1 - 1e-6)

    @SETTINGS
    @given(data=st.data())
    def test_volumetric_upper_bound(self, data):
        topo = data.draw(small_topology())
        tm = data.draw(hose_tm_for(topo))
        assert throughput(topo, tm).value <= volumetric_upper_bound(topo, tm) * (
            1 + 1e-6
        )

    @SETTINGS
    @given(data=st.data())
    def test_adding_edge_never_hurts(self, data):
        topo = data.draw(small_topology())
        tm = data.draw(hose_tm_for(topo))
        t1 = throughput(topo, tm).value
        g = nx.Graph(topo.graph)
        non_edges = list(nx.non_edges(g))
        if not non_edges:
            return
        idx = data.draw(st.integers(min_value=0, max_value=len(non_edges) - 1))
        g.add_edge(*non_edges[idx])
        bigger = Topology("aug", g, topo.servers.copy(), "test")
        t2 = throughput(bigger, tm).value
        assert t2 >= t1 * (1 - 1e-6)

    @SETTINGS
    @given(data=st.data())
    def test_cut_upper_bounds_throughput(self, data):
        topo = data.draw(small_topology())
        tm = data.draw(hose_tm_for(topo))
        cut = sparsest_cut_bruteforce(topo, tm)
        assert cut.sparsity >= throughput(topo, tm).value * (1 - 1e-6)

    @SETTINGS
    @given(data=st.data())
    def test_any_single_cut_upper_bounds(self, data):
        topo = data.draw(small_topology())
        tm = data.draw(hose_tm_for(topo))
        n = topo.n_switches
        bits = data.draw(
            st.lists(st.booleans(), min_size=n, max_size=n).filter(
                lambda b: any(b) and not all(b)
            )
        )
        res = cut_sparsity(topo, tm, np.array(bits))
        assert res.sparsity >= throughput(topo, tm).value * (1 - 1e-6)


class TestTrafficInvariants:
    @SETTINGS
    @given(data=st.data())
    def test_longest_matching_is_hose_tight_derangement(self, data):
        topo = data.draw(small_topology())
        tm = longest_matching(topo)
        assert np.allclose(tm.row_sums(), 1.0)
        assert np.allclose(tm.col_sums(), 1.0)
        assert np.all(np.diag(tm.demand) == 0)

    @SETTINGS
    @given(data=st.data())
    def test_random_matching_hose(self, data):
        topo = data.draw(small_topology())
        k = data.draw(st.integers(min_value=1, max_value=6))
        seed = data.draw(st.integers(min_value=0, max_value=1000))
        tm = random_matching(topo, n_matchings=k, seed=seed)
        assert tm.is_hose(topo.servers)
        assert np.allclose(tm.row_sums(), 1.0, atol=1e-9)

    @SETTINGS
    @given(data=st.data())
    def test_shuffle_preserves_throughput_on_symmetric_graph(self, data):
        # Vertex-transitive graph: relabeling the TM cannot change throughput.
        from repro.topologies import hypercube

        topo = hypercube(3)
        tm = data.draw(hose_tm_for(topo))
        seed = data.draw(st.integers(min_value=0, max_value=100))
        # A shuffled TM on an asymmetric graph differs, but the cycle C_n and
        # hypercube are vertex- and edge-transitive only for automorphic
        # permutations; use XOR translation which IS an automorphism.
        mask = data.draw(st.integers(min_value=0, max_value=7))
        perm = np.arange(8) ^ mask
        t1 = throughput(topo, tm).value
        t2 = throughput(topo, tm.permuted(perm)).value
        del seed
        assert t2 == pytest.approx(t1, rel=1e-5)

    @given(n=st.integers(min_value=2, max_value=200), seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_derangement_property(self, n, seed):
        rng = np.random.default_rng(seed)
        perm = permutation_avoiding_fixed_points(n, rng)
        assert not np.any(perm == np.arange(n))


class TestEquipmentInvariants:
    @SETTINGS
    @given(data=st.data())
    def test_random_equivalent_preserves_equipment(self, data):
        topo = data.draw(small_topology())
        seed = data.draw(st.integers(min_value=0, max_value=1000))
        rand = same_equipment_random_graph(topo, seed=seed)
        assert np.array_equal(rand.degree_sequence(), topo.degree_sequence())
        assert np.array_equal(rand.servers, topo.servers)
        assert rand.is_connected()
