"""Tests for the central env-knob registry (``repro.utils.envknobs``).

The knob table is the source of truth three ways: every ``REPRO_*`` name
referenced anywhere under ``src/`` must be declared, every declared knob
must be documented in the README table, and every read must go through the
typed accessors (enforced separately by lint rule R003).
"""

import re
from pathlib import Path

import pytest

from repro.utils.envknobs import KNOBS, knob_float, knob_int, knob_str, read_knob

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"

KNOB_NAME_RE = re.compile(r"\bREPRO_[A-Z][A-Z0-9_]*\b")


def referenced_knob_names():
    names = set()
    for path in SRC.rglob("*.py"):
        names.update(KNOB_NAME_RE.findall(path.read_text()))
    return names


class TestDeclarationCoverage:
    def test_every_referenced_knob_is_declared(self):
        undeclared = referenced_knob_names() - set(KNOBS)
        assert not undeclared, (
            f"REPRO_* names referenced in src/ but not declared in "
            f"repro.utils.envknobs.KNOBS: {sorted(undeclared)}"
        )

    def test_every_declared_knob_is_referenced(self):
        # A declared-but-unused knob is dead configuration surface.
        unused = set(KNOBS) - referenced_knob_names()
        assert not unused, f"declared but never read: {sorted(unused)}"

    def test_every_declared_knob_is_documented_in_readme(self):
        readme = (REPO_ROOT / "README.md").read_text()
        missing = [name for name in KNOBS if f"`{name}`" not in readme]
        assert not missing, (
            f"knobs missing from the README table: {missing}"
        )

    def test_table_is_keyed_consistently(self):
        for name, knob in KNOBS.items():
            assert knob.name == name
            assert knob.kind in ("str", "int", "float")
            assert knob.description


class TestAccessors:
    def test_read_knob_rejects_undeclared_names(self):
        with pytest.raises(KeyError, match="undeclared"):
            read_knob("REPRO_NOT_A_KNOB")

    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert knob_str("REPRO_SCALE", "small") == "small"
        assert knob_str("REPRO_SCALE") is None
        assert read_knob("REPRO_SCALE") is None

    def test_set_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert knob_str("REPRO_SCALE", "small") == "medium"

    def test_int_parses_and_defaults_on_empty(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_BLOCKS", "8")
        assert knob_int("REPRO_SHARD_BLOCKS", 4) == 8
        monkeypatch.setenv("REPRO_SHARD_BLOCKS", "")
        assert knob_int("REPRO_SHARD_BLOCKS", 4) == 4
        monkeypatch.delenv("REPRO_SHARD_BLOCKS")
        assert knob_int("REPRO_SHARD_BLOCKS") is None

    def test_float_parses_and_defaults_on_empty(self, monkeypatch):
        monkeypatch.setenv("REPRO_WHATIF_RTOL", "1e-3")
        assert knob_float("REPRO_WHATIF_RTOL", 1e-6) == 1e-3
        monkeypatch.setenv("REPRO_WHATIF_RTOL", "")
        assert knob_float("REPRO_WHATIF_RTOL", 1e-6) == 1e-6

    def test_malformed_int_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_THRESHOLD", "many")
        with pytest.raises(ValueError):
            knob_int("REPRO_SHARD_THRESHOLD", 1)


class TestKnobSemantics:
    def test_result_affecting_flags(self):
        # Cache-location/storage knobs must NOT be marked result-affecting;
        # engine/backend/tolerance knobs must be.
        assert not KNOBS["REPRO_CACHE_DIR"].result_affecting
        assert not KNOBS["REPRO_CACHE_BACKEND"].result_affecting
        for name in (
            "REPRO_LP_BACKEND",
            "REPRO_SHARD_THRESHOLD",
            "REPRO_SHARD_BLOCKS",
            "REPRO_LARGE_ENGINE",
            "REPRO_WHATIF_RTOL",
        ):
            assert KNOBS[name].result_affecting, name

    def test_knobs_route_behavior(self, monkeypatch):
        # End-to-end: the sharded policy reads through the registry.
        from repro.throughput.sharded import current_shard_policy

        monkeypatch.setenv("REPRO_SHARD_THRESHOLD", "123")
        monkeypatch.setenv("REPRO_SHARD_BLOCKS", "7")
        monkeypatch.setenv("REPRO_LARGE_ENGINE", "mwu")
        policy = current_shard_policy()
        assert policy.threshold == 123
        assert policy.blocks == 7
        assert policy.prefer == "mwu"
