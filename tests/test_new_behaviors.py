"""Tests for behaviors added during experiment calibration:

* longest matching with spread tie-breaking;
* Jellyfish-from-equipment (server respread);
* server-flow-weighted counting estimator;
* contiguous Facebook frontend roles;
* the cut-accuracy experiment.
"""

import numpy as np
import pytest

from repro.evaluation.equipment import jellyfish_from_equipment
from repro.evaluation.experiments.cut_accuracy import cut_accuracy
from repro.evaluation.runner import SCALES
from repro.throughput import counting_estimator, llskr_path_sets, throughput
from repro.topologies import fat_tree, hypercube, longhop
from repro.topologies.longhop import cayley_spectrum, longhop_generators
from repro.traffic import all_to_all, longest_matching, tm_facebook_frontend
from repro.utils.graphutils import all_pairs_distances


class TestSpreadTies:
    def test_same_total_distance(self):
        topo = longhop(4, servers_per_node=3)
        lm = longest_matching(topo)
        spread = longest_matching(topo, seed=0, spread_ties=True)
        assert spread.meta["matching_total_distance"] == pytest.approx(
            lm.meta["matching_total_distance"]
        )

    def test_spread_uses_more_destinations(self):
        topo = longhop(4, servers_per_node=4)
        lm = longest_matching(topo)
        spread = longest_matching(topo, seed=1, spread_ties=True)
        assert spread.n_flows > lm.n_flows  # partners fan out across ties

    def test_spread_still_hose_tight(self):
        topo = longhop(4, servers_per_node=4)
        spread = longest_matching(topo, seed=2, spread_ties=True)
        assert np.allclose(spread.row_sums(), 4.0)
        assert np.allclose(spread.col_sums(), 4.0)

    def test_spread_not_easier_than_a2a(self):
        topo = longhop(4, servers_per_node=2)
        spread = longest_matching(topo, seed=3, spread_ties=True)
        t_spread = throughput(topo, spread).value
        t_a2a = throughput(topo, all_to_all(topo).scaled(2.0)).value * 2.0
        # Same switch egress: spread LM is still at most as easy as A2A.
        assert t_spread <= t_a2a * (1 + 1e-6)


class TestJellyfishFromEquipment:
    def test_total_equipment_preserved(self):
        ft = fat_tree(4)
        jf = jellyfish_from_equipment(ft, seed=0)
        assert jf.n_switches == ft.n_switches
        assert jf.n_servers == ft.n_servers
        # Total ports conserved: degree + servers sums match.
        assert (jf.degree_sequence() + jf.servers).sum() == (
            ft.degree_sequence() + ft.servers
        ).sum()

    def test_servers_respread(self):
        ft = fat_tree(4)
        jf = jellyfish_from_equipment(ft, seed=1)
        # Fat tree piles 2 servers on 8 edge switches; Jellyfish spreads
        # over all 20 (16 switches with 1, 4 with 0 for 16 servers).
        assert int(jf.servers.max()) <= 1
        assert jf.is_connected()

    def test_hypercube_respread_uniform(self):
        hc = hypercube(4)
        jf = jellyfish_from_equipment(hc, seed=2)
        assert np.all(jf.servers == 1)
        assert np.all(jf.degree_sequence() == 4)


class TestWeightedCountingEstimator:
    def test_weights_proportional_to_server_products(self):
        ft = fat_tree(4)
        tm = all_to_all(ft)
        sets = llskr_path_sets(ft, tm, subflows=2, path_pool=3)
        est = counting_estimator(ft, tm, sets)
        # Every host pair has a_u * a_v = 4 server flows.
        assert np.allclose(est.flow_weights, 4.0)

    def test_mean_in_unit_range(self):
        ft = fat_tree(4)
        tm = all_to_all(ft)
        sets = llskr_path_sets(ft, tm, subflows=2, path_pool=3)
        est = counting_estimator(ft, tm, sets)
        assert 0.0 < est.mean_flow_throughput <= 1.0


class TestFrontendRoles:
    def test_roles_are_contiguous_blocks(self):
        _, roles = tm_facebook_frontend(n_racks=64, seed=0)
        # cache block first, then misc, then web.
        changes = np.count_nonzero(np.diff(roles))
        assert changes == 2
        assert roles[0] == 1 and roles[-1] == 0

    def test_cache_rows_dominate(self):
        tm, roles = tm_facebook_frontend(n_racks=32, seed=1)
        rows = tm.row_sums()
        assert rows[roles == 1].min() > rows[roles == 0].max()


class TestCutAccuracyExperiment:
    def test_runs_and_passes(self):
        res = cut_accuracy(scale=SCALES["small"], seed=0)
        assert res.all_checks_pass(), res.checks
        # Last row is the summary.
        assert res.rows[-1][0] == "SUMMARY"
        assert len(res.rows) > 5
