"""Cross-engine property tests: lp vs mwu vs path-restricted.

On a panel of small random Jellyfish instances and fat trees, the three
engines must agree up to their contracts:

* ``mwu`` returns a *feasible* throughput (never above ``lp``) within its
  (1 − ε)³ multiplicative guarantee of the exact value;
* the path-restricted LP optimizes over a subset of flows, so its value
  can never exceed the unrestricted ``lp`` value — and reaches it once the
  path set is rich enough on tiny instances.
"""

from __future__ import annotations

import pytest

from repro.throughput import (
    paths_for_pairs,
    solve_throughput_mwu,
    solve_throughput_on_paths,
    throughput,
)
from repro.topologies import fat_tree, jellyfish
from repro.traffic import all_to_all, longest_matching, random_matching
from repro.utils.rng import stable_seed

EPSILON = 0.1

#: ~10 small instances: random graphs across sizes/degrees plus fat trees.
INSTANCES = [
    ("jf-10-3", lambda: jellyfish(10, 3, seed=11)),
    ("jf-12-3", lambda: jellyfish(12, 3, seed=12)),
    ("jf-12-4", lambda: jellyfish(12, 4, seed=13)),
    ("jf-14-4", lambda: jellyfish(14, 4, seed=14)),
    ("jf-16-4", lambda: jellyfish(16, 4, seed=15)),
    ("jf-16-5", lambda: jellyfish(16, 5, seed=16)),
    ("jf-18-4", lambda: jellyfish(18, 4, seed=17)),
    ("jf-20-5", lambda: jellyfish(20, 5, seed=18)),
    ("ft-4", lambda: fat_tree(4)),
    ("ft-6", lambda: fat_tree(6)),
]


def _tm_for(topo, name):
    """A mix of TM families across the panel, deterministic per instance."""
    if name.startswith("ft"):
        return all_to_all(topo)
    if name.endswith(("3", "5")):
        return longest_matching(topo)
    return random_matching(topo, seed=stable_seed(name))


@pytest.mark.parametrize("name,build", INSTANCES, ids=[n for n, _ in INSTANCES])
class TestEngineAgreement:
    def test_mwu_within_epsilon_of_lp(self, name, build):
        topo = build()
        tm = _tm_for(topo, name)
        exact = throughput(topo, tm, engine="lp").value
        approx = solve_throughput_mwu(topo, tm, epsilon=EPSILON).value
        assert approx <= exact * (1 + 1e-9), "MWU must stay feasible (<= exact)"
        assert approx >= exact * (1 - EPSILON) ** 3 - 1e-9, (
            f"{name}: MWU {approx:.4f} below (1-eps)^3 guarantee of {exact:.4f}"
        )

    def test_restricted_paths_never_beat_lp(self, name, build):
        topo = build()
        tm = _tm_for(topo, name)
        exact = throughput(topo, tm, engine="lp").value
        srcs, dsts, _ = tm.pairs()
        path_sets = paths_for_pairs(topo, list(zip(srcs, dsts)), k=2)
        restricted = solve_throughput_on_paths(topo, tm, path_sets).value
        assert restricted <= exact * (1 + 1e-6), (
            f"{name}: restricted {restricted:.4f} exceeds exact {exact:.4f}"
        )
        assert restricted > 0.0
