"""Tests for the future-work features: adversarial TM search and placement."""

import numpy as np
import pytest

from repro.evaluation.placement import optimize_placement
from repro.topologies import hypercube, jellyfish
from repro.traffic import longest_matching, tm_facebook_frontend
from repro.traffic.adversarial import worst_case_search
from repro.throughput import throughput


class TestWorstCaseSearch:
    def test_never_worse_than_start_and_bounded(self):
        topo = jellyfish(12, 3, seed=1)
        res = worst_case_search(topo, max_evaluations=15, seed=0)
        assert res.throughput <= res.start_throughput + 1e-9
        # Theorem 2 certifies the search can never go below the bound.
        assert res.throughput >= res.lower_bound - 1e-9
        assert res.gap_to_bound >= 1.0 - 1e-9

    def test_stops_immediately_when_lm_is_optimal(self):
        # On a hypercube LM already sits at the bound: zero evaluations spent.
        topo = hypercube(3)
        res = worst_case_search(topo, max_evaluations=10, seed=0)
        assert res.n_evaluations == 0
        assert res.gap_to_bound == pytest.approx(1.0, rel=1e-6)
        assert not res.improved

    def test_result_tm_is_hose_matching(self):
        topo = jellyfish(12, 3, seed=2)
        res = worst_case_search(topo, max_evaluations=8, seed=1)
        assert np.allclose(res.tm.row_sums(), 1.0)
        assert np.allclose(res.tm.col_sums(), 1.0)
        # And its LP value matches the reported throughput.
        assert throughput(topo, res.tm).value == pytest.approx(
            res.throughput, rel=1e-6
        )

    def test_rejects_tiny_topologies(self):
        topo = jellyfish(2, 1, seed=0) if False else None
        # Build a 3-server topology manually instead.
        import networkx as nx

        from repro.topologies import make_topology

        t3 = make_topology(nx.cycle_graph(3), 1, "C3", "cycle")
        with pytest.raises(ValueError):
            worst_case_search(t3, max_evaluations=5)


class TestPlacementOptimizer:
    def test_gain_at_least_baseline(self):
        topo = hypercube(4)
        rack_tm, _ = tm_facebook_frontend(n_racks=16, seed=0)
        res = optimize_placement(topo, rack_tm, max_evaluations=10, seed=0)
        assert res.throughput >= res.baseline_throughput - 1e-9
        assert res.gain >= 1.0 - 1e-9

    def test_placement_is_valid(self):
        topo = hypercube(4)
        rack_tm, _ = tm_facebook_frontend(n_racks=16, seed=1)
        res = optimize_placement(topo, rack_tm, max_evaluations=6, seed=2)
        assert len(set(res.placement.tolist())) == 16
        assert set(res.placement.tolist()) <= set(topo.server_nodes.tolist())

    def test_too_many_racks_rejected(self):
        topo = hypercube(3)
        rack_tm, _ = tm_facebook_frontend(n_racks=16, seed=0)
        with pytest.raises(ValueError):
            optimize_placement(topo, rack_tm, max_evaluations=5)

    def test_skewed_tm_benefits_on_structured_topology(self):
        # The headline future-work claim: optimized placement of a skewed TM
        # beats the naive order on a structured (non-expander) topology.
        topo = hypercube(4)
        rack_tm, _ = tm_facebook_frontend(n_racks=16, seed=3)
        res = optimize_placement(topo, rack_tm, max_evaluations=25, seed=3, restarts=2)
        assert res.gain >= 1.0  # never hurts; usually strictly better
