"""Tests for the `repro.api` Session, spec registry, and streaming runner."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api import (
    REGISTRY,
    BatchStatsEvent,
    ProgressEvent,
    ResultEvent,
    RowEvent,
    Session,
    emit_row,
    ensure_registered,
    experiment,
    run_experiment,
)
from repro.api.docgen import api_markdown, experiments_markdown
from repro.api.spec import ExperimentRegistry
from repro.batch import BatchSolveError, BatchSolver, SolveRequest, solve_values
from repro.evaluation.experiments import EXPERIMENTS
from repro.evaluation.runner import ExperimentResult, ScaleConfig
from repro.topologies import hypercube
from repro.traffic import all_to_all

#: A deliberately tiny profile: every streamed-vs-blocking comparison below
#: runs the full chunking/dedupe/emission machinery in seconds.  The switch
#: cap must admit the family representatives (25-64 switches) that fig10
#: sweeps, or those comparisons would be vacuous.
TINY = ScaleConfig("small", max_servers=24, max_switches=40, samples=1, shuffles=1)


def _stream_events(session: Session, exp_id: str):
    return list(session.stream(exp_id))


# ---------------------------------------------------------------- registry
class TestRegistry:
    def test_registry_backs_experiments_dict(self):
        registry = ensure_registered()
        assert EXPERIMENTS == registry.as_dict()
        assert set(EXPERIMENTS) == set(registry.ids())

    def test_artifact_order(self):
        ids = ensure_registered().ids()
        figs = [i for i in ids if i.startswith("fig")]
        assert figs == [f"fig{n}" for n in range(1, 16)]
        assert ids.index("table1") < ids.index("table2") < ids.index("theorem2")

    def test_specs_carry_metadata(self):
        for spec in ensure_registered():
            assert spec.title
            assert spec.artifact
            assert spec.tags, f"{spec.experiment_id} has no tags"
            assert spec.description

    def test_tag_filtering(self):
        registry = ensure_registered()
        figure_ids = {s.experiment_id for s in registry.filter("figure")}
        assert figure_ids == {f"fig{n}" for n in range(1, 16)}
        assert {s.experiment_id for s in registry.filter("theory")} >= {
            "fig1",
            "theorem2",
        }
        table_ids = {s.experiment_id for s in registry.filter("table")}
        assert {"table1", "table2"} <= table_ids

    def test_duplicate_registration_rejected(self):
        registry = ExperimentRegistry()

        @experiment("dup", title="t", artifact="a", registry=registry)
        def first(scale=None, seed=0):
            """First."""

        with pytest.raises(ValueError, match="already registered"):

            @experiment("dup", title="t2", artifact="a2", registry=registry)
            def second(scale=None, seed=0):
                """Second."""

    def test_unknown_id_message_matches_legacy(self):
        with pytest.raises(KeyError, match="unknown experiment 'fig99'"):
            Session.spec("fig99")

    def test_declared_checks_match_result(self):
        # Cheap experiments with unconditional checks: the spec's declared
        # check names must be exactly what the result asserts.
        for exp_id in ("butterfly25", "theorem2"):
            result = run_experiment(exp_id, seed=0)
            assert set(Session.spec(exp_id).checks) == set(result.checks)

    def test_experiments_md_is_fresh(self):
        committed = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
        assert committed.exists(), "EXPERIMENTS.md missing; see repro list --markdown"
        assert committed.read_text() == experiments_markdown(), (
            "EXPERIMENTS.md is stale; regenerate with "
            "`python -m repro list --markdown > EXPERIMENTS.md`"
        )

    def test_api_md_is_fresh(self):
        committed = Path(__file__).resolve().parent.parent / "API.md"
        assert committed.exists(), "API.md missing; see repro list --api-markdown"
        assert committed.read_text() == api_markdown(), (
            "API.md is stale; regenerate with "
            "`python -m repro list --api-markdown > API.md`"
        )

    def test_api_md_covers_every_engine_and_export(self):
        # The generator is introspective; guard the properties the
        # reference must keep: every dispatchable engine documented, every
        # public export of the api/batch surfaces present.
        from repro.batch import BATCH_ENGINES
        import repro.api as api_module
        import repro.batch as batch_module

        text = api_markdown()
        for engine in BATCH_ENGINES + ("auto",):
            assert f"| `{engine}` |" in text
        for name in list(api_module.__all__) + list(batch_module.__all__):
            assert f"`{name}`" in text, f"API.md is missing export {name}"


# ----------------------------------------------------------------- session
class TestSessionRun:
    def test_shim_equivalent_to_session_run(self):
        legacy = run_experiment("butterfly25", seed=0)
        with Session(seed=0) as session:
            direct = session.run("butterfly25")
        assert direct.rows == legacy.rows
        assert direct.checks == legacy.checks
        assert direct.extras["batch"] == legacy.extras["batch"]

    def test_scale_accepts_profile_name(self):
        with Session(scale="small") as session:
            assert session.scale.name == "small"
        with pytest.raises(ValueError, match="unknown"):
            Session(scale="galactic")

    def test_shared_cache_across_experiments(self, tmp_path):
        with Session(seed=0, cache_dir=tmp_path) as session:
            cold = session.run("theorem2")
            warm = session.run("theorem2")
            agg = session.stats()
        assert cold.rows == warm.rows
        assert cold.extras["batch"]["solved"] == cold.extras["batch"]["requests"] > 0
        # Per-experiment stats are deltas on the shared solver: the second
        # run must report zero solves, not inherit the first run's counters.
        assert warm.extras["batch"]["solved"] == 0
        assert warm.extras["batch"]["cache_hits"] == warm.extras["batch"]["requests"]
        assert agg["solved"] == cold.extras["batch"]["solved"]
        assert agg["requests"] == 2 * cold.extras["batch"]["requests"]

    def test_closed_session_rejects_runs(self):
        session = Session()
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.run("butterfly25")

    def test_stream_created_before_close_does_not_run_after(self):
        # The worker thread starts lazily at first iteration; a generator
        # obtained before close() must not run the experiment (and leak a
        # fresh pool) afterwards.
        session = Session()
        stream = session.stream("butterfly25")
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            list(stream)


# --------------------------------------------------------------- streaming
class TestStreaming:
    @pytest.mark.parametrize("exp_id", ["fig2", "fig5", "fig10"])
    def test_streamed_rows_bit_identical_to_blocking(self, exp_id):
        blocking = run_experiment(exp_id, scale=TINY, seed=0)
        with Session(scale=TINY, seed=0) as session:
            events = _stream_events(session, exp_id)
        rows = [e.row for e in events if isinstance(e, RowEvent)]
        results = [e for e in events if isinstance(e, ResultEvent)]
        assert rows, f"{exp_id} produced no rows at the tiny test scale"
        assert rows == list(blocking.rows)
        assert len(results) == 1
        assert results[0].result.rows == blocking.rows
        assert results[0].result.checks == blocking.checks
        assert (
            results[0].result.extras["batch"]["solved"]
            == blocking.extras["batch"]["solved"]
        )

    def test_event_ordering_invariants(self):
        with Session(scale=TINY, seed=0) as session:
            events = _stream_events(session, "routing-gap")
        # Exactly one terminal ResultEvent, and it is last.
        assert isinstance(events[-1], ResultEvent)
        assert sum(isinstance(e, ResultEvent) for e in events) == 1
        # Rows arrive before the terminal event, interleaved with progress.
        row_positions = [i for i, e in enumerate(events) if isinstance(e, RowEvent)]
        progress = [e for e in events if isinstance(e, ProgressEvent)]
        assert row_positions and row_positions[-1] < len(events) - 1
        assert progress, "no ProgressEvents streamed"
        last_progress = max(
            i for i, e in enumerate(events) if isinstance(e, ProgressEvent)
        )
        assert row_positions[0] < last_progress, "rows did not interleave"
        # ProgressEvents are monotone in both counters, done <= total.
        for a, b in zip(progress, progress[1:]):
            assert b.done >= a.done
            assert b.total >= a.total
        assert all(e.done <= e.total for e in progress)
        # RowEvent indices count up from zero.
        assert [e.index for e in events if isinstance(e, RowEvent)] == list(
            range(len(row_positions))
        )

    def test_batch_stats_events(self):
        with Session(scale=TINY, seed=0) as session:
            events = _stream_events(session, "fig2")
        batches = [e for e in events if isinstance(e, BatchStatsEvent)]
        result = events[-1].result
        assert batches, "no BatchStatsEvents streamed"
        assert sum(b.stats["solved"] for b in batches) == result.extras["batch"]["solved"]
        assert (
            sum(b.stats["requests"] for b in batches)
            == result.extras["batch"]["requests"]
        )

    def test_unported_experiment_still_streams_rows(self):
        # An experiment that never calls emit_row (e.g. third-party code)
        # falls back to emitting every row (late, but exactly once) before
        # the terminal event.
        registry = ensure_registered()

        @experiment(
            "legacy-rows",
            title="builds rows without emit_row",
            artifact="test scaffolding",
            tags=("test",),
        )
        def legacy_rows(scale=None, seed=0):
            """Rows assembled the pre-streaming way."""
            topo = hypercube(2)
            value = solve_values([SolveRequest(topo, all_to_all(topo))])[0]
            return ExperimentResult(
                "legacy-rows", "t", ["name", "value"], [("a", value), ("b", 2.0)]
            )

        try:
            with Session(seed=0) as session:
                events = _stream_events(session, "legacy-rows")
        finally:
            registry.unregister("legacy-rows")
        rows = [e.row for e in events if isinstance(e, RowEvent)]
        assert isinstance(events[-1], ResultEvent)
        assert rows == list(events[-1].result.rows) and len(rows) == 2

    def test_stream_matches_run_with_worker_pool(self):
        with Session(scale=TINY, seed=0, workers=2) as session:
            events = _stream_events(session, "fig10")
            pooled_rows = [e.row for e in events if isinstance(e, RowEvent)]
        inline = run_experiment("fig10", scale=TINY, seed=0)
        assert pooled_rows == list(inline.rows)

    def test_unknown_id_fails_at_call_not_iteration(self):
        with Session() as session:
            with pytest.raises(KeyError, match="unknown experiment"):
                session.stream("fig99")

    def test_error_propagates_mid_stream(self):
        registry = ensure_registered()

        @experiment(
            "boom",
            title="always fails mid-stream",
            artifact="test scaffolding",
            tags=("test",),
        )
        def boom(scale=None, seed=0):
            """Emit one good row, then hit a failing solve."""
            topo = hypercube(2)
            good = solve_values([SolveRequest(topo, all_to_all(topo))])[0]
            emit_row(("good", good))
            solve_values(
                [SolveRequest(topo, all_to_all(topo), params={"bogus_kw": 1})]
            )
            return ExperimentResult("boom", "t", ["x"], [])  # pragma: no cover

        try:
            with Session(seed=0) as session:
                seen = []
                with pytest.raises(BatchSolveError):
                    for event in session.stream("boom"):
                        seen.append(event)
                # Events preceding the failure were delivered...
                assert any(
                    isinstance(e, RowEvent) and e.row[0] == "good" for e in seen
                )
                assert not any(isinstance(e, ResultEvent) for e in seen)
                # ...and the shared session survives for the next experiment.
                result = session.run("butterfly25")
                assert result.all_checks_pass()
        finally:
            registry.unregister("boom")

    def test_abandoned_stream_does_not_poison_session(self):
        with Session(scale=TINY, seed=0) as session:
            stream = session.stream("fig10")
            first_row = None
            for event in stream:
                if isinstance(event, RowEvent):
                    first_row = event
                    break
            stream.close()
            assert first_row is not None
            # The next run joins the abandoned worker thread first.
            result = session.run("butterfly25")
            assert result.all_checks_pass()


# ------------------------------------------------ solver streaming substrate
class TestBatchSolverStreaming:
    def _requests(self, n=3):
        reqs = []
        for dim in range(2, 2 + n):
            topo = hypercube(dim)
            reqs.append(SolveRequest(topo, all_to_all(topo), tag=f"h{dim}"))
        return reqs

    def test_submission_order_preserved(self):
        reqs = self._requests()
        with BatchSolver(workers=1) as solver:
            batch = [o.require().value for o in solver.solve_many(reqs)]
            for req in reqs:
                solver.submit(req)
            streamed = [o.require().value for o in solver.iter_outcomes()]
        assert streamed == batch

    def test_pool_streaming_matches_inline(self):
        reqs = self._requests()
        inline = [
            o.require().value for o in BatchSolver(workers=1).solve_many(reqs)
        ]
        with BatchSolver(workers=2) as solver:
            for req in reqs:
                solver.submit(req)
            tags = [(o.tag, o.require().value) for o in solver.iter_outcomes()]
        assert [v for _, v in tags] == inline
        assert [t for t, _ in tags] == [r.tag for r in reqs]

    def test_streaming_counts_match_solve_many(self, tmp_path):
        from repro.batch import ResultCache

        reqs = self._requests()
        dup = SolveRequest(reqs[0].topology, reqs[0].tm, tag="dup")
        batch_solver = BatchSolver(workers=1, cache=ResultCache(tmp_path / "a"))
        batch_solver.solve_many(reqs + [dup])
        stream_solver = BatchSolver(workers=1, cache=ResultCache(tmp_path / "b"))
        for req in reqs + [dup]:
            stream_solver.submit(req)
        outcomes = list(stream_solver.iter_outcomes())

        def counters(solver):
            return {k: v for k, v in solver.stats().items() if k != "cache"}

        assert counters(stream_solver) == counters(batch_solver)
        # The duplicate was served from the in-stream memo, not re-solved.
        assert outcomes[-1].from_cache
        assert stream_solver.n_solved == len(reqs)
        assert stream_solver.n_cache_hits == 1

    def test_submit_probes_cache(self, tmp_path):
        from repro.batch import ResultCache

        cache = ResultCache(tmp_path)
        req = self._requests(1)[0]
        with BatchSolver(workers=1, cache=cache) as solver:
            solver.submit(req)
            cold = list(solver.iter_outcomes())
        with BatchSolver(workers=1, cache=cache) as solver:
            solver.submit(req)
            warm = list(solver.iter_outcomes())
            assert solver.n_solved == 0
            assert solver.n_cache_hits == 1
        assert warm[0].from_cache
        assert warm[0].require().value == cold[0].require().value

    def test_error_capture_and_drain(self):
        topo = hypercube(2)
        good = SolveRequest(topo, all_to_all(topo))
        bad = SolveRequest(topo, all_to_all(topo), params={"bogus_kw": 1})
        with BatchSolver(workers=1) as solver:
            solver.submit(bad)
            solver.submit(good)
            outcomes = solver.iter_outcomes()
            first = next(outcomes)
            assert not first.ok
            with pytest.raises(BatchSolveError):
                first.require()
            assert solver.pending_outcomes == 1
            assert solver.drain() == 1
            assert solver.pending_outcomes == 0
            assert solver.n_errors == 1 and solver.n_solved == 1

    def test_cancelled_future_becomes_error_outcome(self):
        # A job cancelled when a timeout recycles the pool must surface as
        # a per-job error outcome (CancelledError is a BaseException since
        # 3.8 and would otherwise escape the capture and crash the stream).
        from concurrent.futures import Future

        from repro.batch.solver import _StreamEntry

        solver = BatchSolver(workers=2)
        req = self._requests(1)[0]
        entry = _StreamEntry(req, use_cache=False)
        fut = Future()
        fut.cancel()
        # Complete the executor's cancellation handshake: without it the
        # future stays CANCELLED (not CANCELLED_AND_NOTIFIED) and
        # futures.wait() would block forever.
        fut.set_running_or_notify_cancel()
        entry.future = fut
        solver._stream_outstanding[fut] = entry
        solver._stream_pending.append(entry)
        solver.n_requests += 1
        outcomes = list(solver.iter_outcomes())
        assert len(outcomes) == 1 and not outcomes[0].ok
        assert "Cancelled" in outcomes[0].error
        assert solver.n_errors == 1
        solver.close()

    def test_progress_callback_fires_per_job(self):
        reqs = self._requests()
        ticks = []
        with BatchSolver(workers=1) as solver:
            solver.progress_callback = lambda s: ticks.append(
                (s.n_solved, s.n_requests)
            )
            for req in reqs:
                solver.submit(req)
            list(solver.iter_outcomes())
        assert [t[0] for t in ticks] == [1, 2, 3]

    def test_stream_batch_callback_counts_submit_time_hits(self, tmp_path):
        # The batch delta baseline is captured at first submit: a fully
        # warm streamed batch must report its requests and cache hits, not
        # zeros (submission itself counts the probe hits).
        from repro.batch import ResultCache

        reqs = self._requests(2)
        cache = ResultCache(tmp_path)
        with BatchSolver(workers=1, cache=cache) as solver:
            for req in reqs:
                solver.submit(req)
            list(solver.iter_outcomes())
        batches = []
        with BatchSolver(workers=1, cache=cache) as solver:
            solver.batch_callback = batches.append
            for req in reqs:
                solver.submit(req)
            list(solver.iter_outcomes())
        assert len(batches) == 1
        assert batches[0]["requests"] == 2
        assert batches[0]["cache_hits"] == 2 and batches[0]["solved"] == 0

    def test_nested_streaming_rejected_loudly(self):
        # One solver has one outcome FIFO: consuming a second stream inside
        # another's loop would silently cross-wire values, so the helpers
        # refuse instead.
        from repro.batch import iter_outcome_values, use_solver

        reqs = self._requests(2)
        with BatchSolver(workers=1) as solver, use_solver(solver):
            outer = iter_outcome_values(reqs[:1] + reqs[1:])
            next(outer)  # one outcome still pending on the solver
            inner = iter_outcome_values(self._requests(1))
            with pytest.raises(RuntimeError, match="nested streaming"):
                next(inner)

    def test_snapshot_deltas(self):
        reqs = self._requests(2)
        with BatchSolver(workers=1) as solver:
            solver.solve_many(reqs[:1])
            snap = solver.snapshot()
            solver.solve_many(reqs[1:])
            delta = solver.stats_since(snap)
        assert delta["requests"] == 1 and delta["solved"] == 1
        assert solver.stats()["solved"] == 2
