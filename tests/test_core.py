"""Tests for the compiled instance core (repro.core) and its integration.

Covers the contract the refactor rests on: compilation is canonical
(build order never changes the digest, relabeling always does), cached
(second compile is the identical object), pickleable, and the batch
layer's keys and worker payloads consume the compiled form — no networkx
traversal, no full-array re-hash, no graph in a pool payload.
"""

from __future__ import annotations

import pickle

import networkx as nx
import numpy as np
import pytest

import repro.core.arcgraph as arcgraph_mod
from repro.batch import BatchSolver, SolveRequest, instance_key
from repro.batch.solver import _solve_captured
from repro.core import ArcGraph, as_arcgraph, compile_graph
from repro.throughput import throughput
from repro.topologies import hypercube, jellyfish, make_topology
from repro.topologies.base import Topology
from repro.traffic import all_to_all, longest_matching


def _graph_from_edges(edge_order, n=None):
    g = nx.Graph()
    if n is not None:
        g.add_nodes_from(range(n))
    g.add_edges_from(edge_order)
    return g


class TestCompilationInvariance:
    def test_edge_insertion_order_irrelevant(self):
        # Same canonical arc set, different build order => same digest.
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
        a = compile_graph(_graph_from_edges(edges, n=4))
        b = compile_graph(_graph_from_edges(list(reversed(edges)), n=4))
        assert a.digest == b.digest
        assert np.array_equal(a.tails, b.tails)
        assert np.array_equal(a.heads, b.heads)
        assert np.array_equal(a.caps, b.caps)

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_isomorphic_relabeling_same_canonical_arcs_same_digest(self, seed):
        # Relabel a graph and relabel it back: the canonical arc set is
        # unchanged, so the digest must be too — regardless of the node
        # and adjacency iteration orders the round trip scrambled.
        g = nx.random_regular_graph(3, 10, seed=seed)
        rng = np.random.default_rng(seed)
        perm = rng.permutation(10)
        scrambled = nx.relabel_nodes(g, {i: int(perm[i]) for i in range(10)})
        back = nx.relabel_nodes(
            scrambled, {int(perm[i]): i for i in range(10)}
        )
        assert compile_graph(g).digest == compile_graph(back).digest

    def test_true_relabeling_changes_digest(self):
        path = _graph_from_edges([(0, 1), (1, 2), (2, 3)])
        permuted = _graph_from_edges([(0, 2), (2, 1), (1, 3)])
        assert compile_graph(path).digest != compile_graph(permuted).digest

    def test_capacity_changes_digest(self):
        core = compile_graph(_graph_from_edges([(0, 1), (1, 2), (2, 0)]))
        assert core.with_caps(core.caps * 2.0).digest != core.digest

    def test_unsorted_arrays_canonicalized(self):
        core = compile_graph(_graph_from_edges([(0, 1), (1, 2)]))
        order = np.argsort(-np.arange(core.n_arcs))  # reversed order
        rebuilt = ArcGraph(
            core.n_nodes, core.tails[order], core.heads[order], core.caps[order]
        )
        assert rebuilt.digest == core.digest

    def test_with_caps_matches_fresh_compile_digest(self):
        # The overlay's two-stage digest must equal a from-scratch compile
        # of the same content — shard cache entries depend on it.
        topo = jellyfish(12, 3, seed=5)
        core = topo.compile()
        rng = np.random.default_rng(0)
        share = np.asarray(core.caps) * rng.uniform(0.1, 1.0, core.n_arcs)
        overlay = core.with_caps(share)
        fresh = ArcGraph(core.n_nodes, core.tails, core.heads, share)
        assert overlay.digest == fresh.digest
        assert overlay.structure_digest == core.structure_digest

    def test_multigraph_parallel_edges_merge(self):
        g = nx.MultiGraph()
        g.add_nodes_from(range(3))
        g.add_edges_from([(0, 1), (0, 1), (1, 2)])
        core = compile_graph(g)
        topo_caps = dict(zip(zip(core.tails.tolist(), core.heads.tolist()), core.caps))
        assert topo_caps[(0, 1)] == 2.0 and topo_caps[(1, 2)] == 1.0


class TestArcGraphBehavior:
    def test_pickle_round_trip(self):
        core = hypercube(3).compile()
        clone = pickle.loads(pickle.dumps(core))
        assert clone.digest == core.digest
        assert clone.structure_digest == core.structure_digest
        assert np.array_equal(clone.tails, core.tails)
        assert np.array_equal(clone.indptr, core.indptr)
        # Derived structure still works (memo was dropped, rebuilds).
        assert clone.transpose_safe()
        assert clone.is_connected()

    def test_compile_is_cached_identity(self):
        topo = hypercube(3)
        assert topo.compile() is topo.compile()

    def test_with_servers_shares_compiled_core(self):
        topo = hypercube(3)
        core = topo.compile()
        assert topo.with_servers(4).compile() is core

    def test_immutability(self):
        core = hypercube(2).compile()
        with pytest.raises(ValueError):
            core.caps[0] = 7.0
        with pytest.raises(AttributeError):
            core.digest = "nope"

    def test_degrees_match_and_reject_fractional_caps(self):
        topo = jellyfish(12, 3, seed=8)
        core = topo.compile()
        from repro.utils.graphutils import degree_sequence

        assert np.array_equal(core.degrees(), degree_sequence(topo.graph))
        sliced = core.with_caps(np.asarray(core.caps) * 0.3)
        with pytest.raises(ValueError, match="non-integral"):
            sliced.degrees()

    def test_arc_ids_lookup_and_missing(self):
        core = compile_graph(_graph_from_edges([(0, 1), (1, 2)]))
        ids = core.arc_ids([0, 2], [1, 1])
        tails, heads, _ = core.arc_arrays()
        assert tails[ids[0]] == 0 and heads[ids[0]] == 1
        assert tails[ids[1]] == 2 and heads[ids[1]] == 1
        with pytest.raises(KeyError):
            core.arc_ids([0], [2])

    def test_reverse_permutation_and_asymmetry(self):
        core = hypercube(3).compile()
        rev = core.reverse_permutation()
        assert np.array_equal(core.tails[rev], core.heads)
        assert core.transpose_safe()
        lopsided = core.with_caps(np.arange(1.0, core.n_arcs + 1.0))
        assert not lopsided.transpose_safe()

    def test_adjacency_and_distances_match_graphutils(self):
        from repro.utils.graphutils import all_pairs_distances, to_csr_adjacency

        topo = jellyfish(14, 3, seed=2)
        core = topo.compile()
        assert (core.adjacency() != to_csr_adjacency(topo.graph)).nnz == 0
        assert np.array_equal(
            core.hop_distances(), all_pairs_distances(topo.graph)
        )
        assert np.array_equal(
            core.hop_distances(np.array([0, 3])),
            all_pairs_distances(topo.graph)[[0, 3]],
        )

    def test_as_arcgraph_forms(self):
        topo = hypercube(2)
        core = topo.compile()
        assert as_arcgraph(topo) is core
        assert as_arcgraph(core) is core
        with pytest.raises(TypeError):
            as_arcgraph(42)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            ArcGraph(2, [0], [2], [1.0])  # endpoint out of range
        with pytest.raises(ValueError):
            ArcGraph(2, [0], [0], [1.0])  # self loop
        with pytest.raises(ValueError):
            ArcGraph(3, [0, 0], [1, 1], [1.0, 1.0])  # duplicate arc


class TestInstanceKeyUsesCompiledDigests:
    def test_no_graph_walk_and_no_rehash_once_compiled(self, monkeypatch):
        topo = jellyfish(12, 3, seed=9)
        tm = all_to_all(topo)
        topo.compile()
        tm.content_digest()
        calls = {"digests": 0, "arcs_of": 0}
        real_digests = arcgraph_mod._content_digests

        def counting_digests(*args, **kwargs):
            calls["digests"] += 1
            return real_digests(*args, **kwargs)

        monkeypatch.setattr(arcgraph_mod, "_content_digests", counting_digests)
        import repro.utils.graphutils as gu

        real_arcs_of = gu.arcs_of

        def counting_arcs_of(graph):
            calls["arcs_of"] += 1
            return real_arcs_of(graph)

        monkeypatch.setattr(gu, "arcs_of", counting_arcs_of)

        keys = {instance_key(topo, tm) for _ in range(5)}
        keys.add(SolveRequest(topo, tm).key)
        assert len(keys) == 1
        assert calls == {"digests": 0, "arcs_of": 0}

    def test_key_equality_against_fresh_build(self):
        a = jellyfish(10, 3, seed=4)
        b = jellyfish(10, 3, seed=4)
        assert instance_key(a, longest_matching(a)) == instance_key(
            b, longest_matching(b)
        )

    def test_key_accepts_compiled_core_directly(self):
        topo = hypercube(3)
        tm = all_to_all(topo)
        assert instance_key(topo.compile(), tm) == instance_key(topo, tm)

    def test_paths_key_needs_full_topology(self):
        topo = hypercube(3)
        with pytest.raises(TypeError):
            instance_key(topo.compile(), all_to_all(topo), engine="paths")

    def test_lp_backend_frozen_into_key(self):
        topo = hypercube(3)
        tm = all_to_all(topo)
        default = SolveRequest(topo, tm)
        pinned = SolveRequest(topo, tm, params={"lp_backend": "highs-ipm"})
        assert default.params == {}
        assert pinned.params["lp_backend"] == "highs-ipm"
        assert default.key != pinned.key
        # Spelling out the default is the same configuration => same key.
        spelled = SolveRequest(topo, tm, params={"lp_backend": "auto"})
        assert spelled.key == default.key

    def test_dispatch_pins_construction_time_backend(self):
        # A default-keyed request solved under a *different* ambient
        # backend must still run the default chain — the key has to fully
        # determine the configuration that produced a cached value.
        from repro.batch.solver import _dispatch
        from repro.throughput import use_lp_backend

        topo = hypercube(3)
        tm = all_to_all(topo)
        req = SolveRequest(topo, tm)  # params == {}: canonical default form
        with use_lp_backend("highs-ds"):
            result = _dispatch(req)
        assert result.meta["lp_backend"] == "auto"

    def test_ambient_backend_reaches_default_requests(self):
        from repro.throughput import use_lp_backend

        topo = hypercube(3)
        tm = all_to_all(topo)
        with use_lp_backend("highs-ds"):
            req = SolveRequest(topo, tm)
        assert req.params["lp_backend"] == "highs-ds"
        assert req.key != SolveRequest(topo, tm).key


class TestWorkerPayloads:
    def test_lp_payload_contains_arrays_not_graph(self):
        topo = jellyfish(16, 4, seed=1)
        tm = all_to_all(topo)
        req = SolveRequest(topo, tm, engine="lp")
        payload = pickle.dumps(req)
        assert b"networkx" not in payload, "nx.Graph leaked into pool payload"
        # Regression: the compiled payload must stay smaller than shipping
        # the graph-carrying request dict the old path pickled.
        raw = pickle.dumps(
            {**req.__dict__, "topology": req.topology}
        )
        assert b"networkx" in raw
        assert len(payload) < len(raw)

    def test_mwu_payload_graph_free_and_paths_keeps_graph(self):
        topo = hypercube(3)
        tm = all_to_all(topo)
        assert b"networkx" not in pickle.dumps(
            SolveRequest(topo, tm, engine="mwu", params={"epsilon": 0.2})
        )
        # Yen's enumeration walks the as-built graph: paths requests must
        # keep the full topology.
        assert b"networkx" in pickle.dumps(
            SolveRequest(
                topo, tm, engine="paths", params={"subflows": 2, "path_pool": 2}
            )
        )

    def test_unpickled_request_solves_identically(self):
        topo = jellyfish(10, 3, seed=7)
        tm = all_to_all(topo)
        req = pickle.loads(pickle.dumps(SolveRequest(topo, tm, engine="lp")))
        assert isinstance(req.topology, ArcGraph)
        result, error = _solve_captured(req)
        assert error is None
        assert result.value == throughput(topo, tm).value

    def test_pool_results_bit_identical_to_inline(self):
        topo = jellyfish(10, 3, seed=3)
        tm = all_to_all(topo)
        inline = BatchSolver(workers=1).solve(SolveRequest(topo, tm)).require()
        with BatchSolver(workers=2) as solver:
            pooled = solver.solve(SolveRequest(topo, tm)).require()
        assert pooled.value == inline.value


class TestEngineArcGraphEntrypoints:
    def test_lp_and_mwu_accept_compiled_core(self):
        topo = jellyfish(10, 3, seed=5)
        tm = all_to_all(topo)
        from repro.throughput import solve_throughput_lp, solve_throughput_mwu

        assert (
            solve_throughput_lp(topo.compile(), tm).value
            == solve_throughput_lp(topo, tm).value
        )
        assert (
            solve_throughput_mwu(topo.compile(), tm, epsilon=0.2).value
            == solve_throughput_mwu(topo, tm, epsilon=0.2).value
        )

    def test_backend_values_agree(self):
        topo = jellyfish(10, 3, seed=5)
        tm = longest_matching(topo)
        from repro.throughput import solve_throughput_lp

        vals = {
            name: solve_throughput_lp(topo, tm, lp_backend=name).value
            for name in ("auto", "highs", "highs-ds", "highs-ipm")
        }
        ref = vals["auto"]
        for name, v in vals.items():
            assert v == pytest.approx(ref, rel=1e-6), name

    def test_unknown_backend_rejected(self):
        from repro.throughput import resolve_lp_backend

        with pytest.raises(ValueError):
            resolve_lp_backend("glop")

    def test_sliced_topology_compiles_to_its_slice(self):
        # Regression: CapacitySlicedTopology.compile() must report the
        # share vector, not the parent graph's full capacities.
        from repro.throughput.sharded import CapacitySlicedTopology

        topo = jellyfish(10, 3, seed=21)
        tails, heads, caps = topo.arcs()
        share = np.asarray(caps) * 0.25
        sliced = CapacitySlicedTopology(
            name="slice",
            graph=topo.graph,
            servers=topo.servers,
            arc_tails=tails,
            arc_heads=heads,
            arc_caps=share,
        )
        assert np.array_equal(sliced.compile().caps, share)
        assert sliced.compile().digest != topo.compile().digest
        assert sliced.compile().structure_digest == topo.compile().structure_digest


class TestTopologyImmutableConvention:
    def test_make_topology_still_validates(self):
        g = nx.Graph()
        g.add_edges_from([(0, 1), (1, 2)])
        topo = make_topology(g, 1, "p3", "path")
        assert isinstance(topo, Topology)
        assert topo.compile().n_arcs == 4
