"""Tests for the batch execution layer (repro.batch).

Covers the four guarantees the sweeps depend on: content-addressed keys
are stable and collision-aware, the on-disk cache round-trips results
exactly, the process-pool path is bit-identical to the inline path, and a
failing job is isolated to its own outcome.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.batch import (
    BatchSolveError,
    BatchSolver,
    ResultCache,
    SolveOutcome,
    SolveRequest,
    get_solver,
    instance_key,
    resolve_workers,
    solve_values,
    use_solver,
    values_by_tag,
)
from repro.throughput import throughput
from repro.topologies import hypercube, jellyfish, make_topology
from repro.traffic import all_to_all, longest_matching


def _path4(order):
    """Path topology on 4 nodes wired in the given node order."""
    g = nx.Graph()
    g.add_nodes_from(range(4))
    g.add_edges_from(zip(order, order[1:]))
    return make_topology(g, 1, "p4", "path")


class TestInstanceKey:
    def test_same_instance_built_twice_same_key(self):
        a, b = hypercube(3), hypercube(3)
        assert instance_key(a, all_to_all(a)) == instance_key(b, all_to_all(b))

    def test_random_topology_same_seed_same_key(self):
        a = jellyfish(12, 3, seed=5)
        b = jellyfish(12, 3, seed=5)
        assert instance_key(a, longest_matching(a)) == instance_key(
            b, longest_matching(b)
        )

    def test_permuted_node_order_different_key(self):
        a = _path4([0, 1, 2, 3])
        b = _path4([0, 2, 1, 3])  # same unlabeled graph, permuted node ids
        assert instance_key(a, all_to_all(a)) != instance_key(b, all_to_all(b))

    def test_scaled_demand_different_key(self):
        topo = hypercube(3)
        tm = all_to_all(topo)
        assert instance_key(topo, tm) != instance_key(topo, tm.scaled(2.0))

    def test_engine_and_params_in_key(self):
        topo = hypercube(3)
        tm = all_to_all(topo)
        k_lp = instance_key(topo, tm, engine="lp")
        k_mwu = instance_key(topo, tm, engine="mwu")
        k_mwu_eps = instance_key(topo, tm, engine="mwu", params={"epsilon": 0.1})
        assert len({k_lp, k_mwu, k_mwu_eps}) == 3

    def test_request_key_matches_function(self):
        topo = hypercube(3)
        tm = all_to_all(topo)
        assert SolveRequest(topo, tm).key == instance_key(topo, tm)

    def test_paths_engine_key_sensitive_to_build_order(self):
        # Yen/BFS path enumeration tie-breaks on adjacency insertion order,
        # so two graphs with identical canonical arcs but different build
        # order may enumerate different path sets: the lp key may collide
        # (same LP), the paths key must not (possibly different LP).
        def cycle4(edge_order):
            g = nx.Graph()
            g.add_nodes_from(range(4))
            g.add_edges_from(edge_order)
            return make_topology(g, 1, "c4", "cycle")

        a = cycle4([(0, 1), (1, 2), (2, 3), (3, 0)])
        b = cycle4([(3, 0), (2, 3), (1, 2), (0, 1)])
        params = {"subflows": 2, "path_pool": 2}
        assert instance_key(a, all_to_all(a)) == instance_key(b, all_to_all(b))
        assert instance_key(
            a, all_to_all(a), engine="paths", params=params
        ) != instance_key(b, all_to_all(b), engine="paths", params=params)
        # Identical build order still shares the paths key.
        c = cycle4([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert instance_key(
            a, all_to_all(a), engine="paths", params=params
        ) == instance_key(c, all_to_all(c), engine="paths", params=params)

    def test_want_flows_not_cacheable(self):
        topo = hypercube(3)
        req = SolveRequest(topo, all_to_all(topo), params={"want_flows": True})
        assert not req.cacheable
        assert SolveRequest(topo, all_to_all(topo)).cacheable


class TestResultCache:
    def test_round_trip(self, tmp_path):
        topo = hypercube(3)
        tm = all_to_all(topo)
        result = throughput(topo, tm)
        cache = ResultCache(tmp_path)
        key = instance_key(topo, tm)
        assert cache.get(key) is None
        cache.put(key, result)
        got = cache.get(key)
        assert got is not None
        assert got.value == result.value
        assert got.engine == result.engine
        assert got.n_variables == result.n_variables

    def test_persists_across_instances(self, tmp_path):
        topo = hypercube(3)
        tm = all_to_all(topo)
        key = instance_key(topo, tm)
        ResultCache(tmp_path).put(key, throughput(topo, tm))
        fresh = ResultCache(tmp_path)
        assert len(fresh) == 1
        assert fresh.get(key).value == pytest.approx(throughput(topo, tm).value)

    def test_clear(self, tmp_path):
        topo = hypercube(3)
        tm = all_to_all(topo)
        cache = ResultCache(tmp_path)
        cache.put(instance_key(topo, tm), throughput(topo, tm))
        assert cache.clear() == 1
        assert len(cache) == 0
        assert not cache.path.exists()

    def test_tolerates_corrupt_lines(self, tmp_path):
        cache = ResultCache(tmp_path)
        topo = hypercube(3)
        tm = all_to_all(topo)
        cache.put(instance_key(topo, tm), throughput(topo, tm))
        with cache.path.open("a") as fh:
            fh.write("{not json\n")
        fresh = ResultCache(tmp_path)
        assert len(fresh) == 1

    def test_stats_count_hits_and_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        topo = hypercube(3)
        tm = all_to_all(topo)
        key = instance_key(topo, tm)
        cache.get(key)
        cache.put(key, throughput(topo, tm))
        cache.get(key)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["puts"] == 1


def _small_batch():
    topos = [hypercube(3), jellyfish(10, 3, seed=1), jellyfish(12, 4, seed=2)]
    return [SolveRequest(t, all_to_all(t), tag=t.name) for t in topos] + [
        SolveRequest(t, longest_matching(t), tag=f"{t.name}/lm") for t in topos
    ]


class TestBatchSolver:
    def test_inline_matches_direct_calls(self):
        requests = _small_batch()
        outcomes = BatchSolver(workers=1).solve_many(requests)
        for req, out in zip(requests, outcomes):
            assert out.ok and out.tag == req.tag
            assert out.require().value == throughput(req.topology, req.tm).value

    def test_pool_bit_identical_to_inline(self):
        requests = _small_batch()
        inline = BatchSolver(workers=1).solve_many(requests)
        with BatchSolver(workers=2) as solver:
            pooled = solver.solve_many(requests)
        assert [o.require().value for o in pooled] == [
            o.require().value for o in inline
        ]

    def test_cache_short_circuits_second_batch(self, tmp_path):
        requests = _small_batch()
        solver = BatchSolver(workers=1, cache=ResultCache(tmp_path))
        first = solver.solve_many(requests)
        assert solver.n_solved == len(requests)
        second = solver.solve_many(requests)
        assert solver.n_solved == len(requests)  # nothing new solved
        assert solver.n_cache_hits == len(requests)
        assert all(o.from_cache for o in second)
        assert [o.require().value for o in second] == [
            o.require().value for o in first
        ]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_error_isolation(self, workers, tmp_path):
        good = hypercube(3)
        bad_tm = all_to_all(hypercube(4))  # 16-node TM on an 8-switch topology
        requests = [
            SolveRequest(good, all_to_all(good), tag="ok1"),
            SolveRequest(good, bad_tm, tag="broken"),
            SolveRequest(good, longest_matching(good), tag="ok2"),
        ]
        with BatchSolver(workers=workers, cache=ResultCache(tmp_path)) as solver:
            outcomes = solver.solve_many(requests)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert "ValueError" in outcomes[1].error
        with pytest.raises(BatchSolveError):
            outcomes[1].require()
        assert solver.n_errors == 1
        # Failed jobs must not be cached.
        assert len(solver.cache) == 2

    def test_pool_timeout_yields_error_outcome_then_recovers(self):
        # A deadline that expires before any LP can finish: every job gets
        # an error outcome instead of hanging or raising, the poisoned pool
        # is recycled, and the next batch solves normally.
        topo = hypercube(4)
        requests = [SolveRequest(topo, all_to_all(topo), tag="slow")]
        with BatchSolver(workers=2, timeout=1e-4) as solver:
            outcomes = solver.solve_many(requests)
            assert not outcomes[0].ok
            assert "TimeoutError" in outcomes[0].error
            assert solver.n_errors == 1
            solver.timeout = None
            retry = solver.solve_many(requests)
            assert retry[0].ok
            assert retry[0].require().value == pytest.approx(
                throughput(topo, all_to_all(topo)).value
            )

    def test_solver_stats_isolate_shared_cache_counters(self, tmp_path):
        # Two solvers sharing one cache: the second must report only its
        # own hit/put deltas, not the cache's lifetime counters.
        cache = ResultCache(tmp_path)
        requests = _small_batch()
        first = BatchSolver(workers=1, cache=cache)
        first.solve_many(requests)
        assert first.stats()["cache"]["puts"] == len(requests)
        second = BatchSolver(workers=1, cache=cache)
        second.solve_many(requests)
        stats = second.stats()["cache"]
        assert stats["hits"] == len(requests)
        assert stats["puts"] == 0 and stats["misses"] == 0

    def test_unknown_engine_is_captured_not_raised(self):
        topo = hypercube(3)
        outcomes = BatchSolver(workers=1).solve_many(
            [SolveRequest(topo, all_to_all(topo), engine="nope")]
        )
        assert not outcomes[0].ok and "ValueError" in outcomes[0].error

    def test_resolve_workers(self):
        assert resolve_workers(1) == 1
        assert resolve_workers("3") == 3
        assert resolve_workers("auto") >= 1
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_outcome_ok_semantics(self):
        out = SolveOutcome(key="k", error="boom")
        assert not out.ok
        with pytest.raises(BatchSolveError):
            out.require()

    def test_solve_values_orders_and_raises(self):
        topo = hypercube(3)
        good = [
            SolveRequest(topo, all_to_all(topo)),
            SolveRequest(topo, longest_matching(topo)),
        ]
        values = BatchSolver(workers=1).solve_values(good)
        assert values == [
            throughput(topo, all_to_all(topo)).value,
            throughput(topo, longest_matching(topo)).value,
        ]
        bad = [SolveRequest(topo, all_to_all(hypercube(4)))]
        with pytest.raises(BatchSolveError):
            BatchSolver(workers=1).solve_values(bad)

    def test_ambient_solve_values(self):
        topo = hypercube(3)
        assert solve_values([SolveRequest(topo, all_to_all(topo))]) == [
            throughput(topo, all_to_all(topo)).value
        ]

    def test_within_batch_duplicates_solved_once_when_cached(self, tmp_path):
        topo = hypercube(3)
        tm = all_to_all(topo)
        requests = [SolveRequest(topo, tm, tag=f"copy{i}") for i in range(3)]
        solver = BatchSolver(workers=1, cache=ResultCache(tmp_path))
        outcomes = solver.solve_many(requests)
        assert solver.n_solved == 1
        assert solver.n_cache_hits == 2
        assert len({o.require().value for o in outcomes}) == 1
        assert [o.tag for o in outcomes] == ["copy0", "copy1", "copy2"]

    def test_values_by_tag_groups_and_raises(self):
        topo = hypercube(3)
        requests = [
            SolveRequest(topo, all_to_all(topo), tag="a2a"),
            SolveRequest(topo, longest_matching(topo), tag="lm"),
            SolveRequest(topo, all_to_all(topo), tag="a2a"),
        ]
        grouped = values_by_tag(BatchSolver(workers=1).solve_many(requests))
        assert sorted(grouped) == ["a2a", "lm"]
        assert len(grouped["a2a"]) == 2 and len(grouped["lm"]) == 1
        assert grouped.get("absent", []) == []
        with pytest.raises(BatchSolveError):
            values_by_tag([SolveOutcome(tag="bad", error="boom")])


class TestAmbientSolver:
    def test_default_is_inline_uncached(self):
        solver = get_solver()
        assert solver.workers == 1 and solver.cache is None

    def test_use_solver_installs_and_restores(self):
        mine = BatchSolver(workers=1)
        with use_solver(mine) as active:
            assert active is mine
            assert get_solver() is mine
        assert get_solver() is not mine
