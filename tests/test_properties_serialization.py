"""Tests for topology properties and experiment serialization."""

import json

import numpy as np
import pytest

from repro.evaluation.runner import ExperimentResult
from repro.topologies import hypercube, jellyfish, slimfly
from repro.topologies.properties import analyze, cheeger_bounds, spectral_gap
from repro.utils.serialization import (
    experiment_from_json,
    experiment_to_csv,
    experiment_to_json,
)


class TestProperties:
    def test_hypercube_properties(self):
        props = analyze(hypercube(4))
        assert props.n_switches == 16
        assert props.diameter == 4
        assert props.mean_path_length == pytest.approx(32 / 15)
        assert props.min_degree == props.max_degree == 4
        # Normalized-Laplacian gap of Q_d is 2/d.
        assert props.spectral_gap == pytest.approx(2 / 4, abs=1e-9)

    def test_slimfly_diameter2(self):
        props = analyze(slimfly(5))
        assert props.diameter == 2

    def test_expander_gap_larger_than_ring(self):
        import networkx as nx

        from repro.topologies import make_topology

        ring = make_topology(nx.cycle_graph(16), 1, "C16", "cycle")
        jf = jellyfish(16, 4, seed=0)
        assert spectral_gap(jf) > spectral_gap(ring)

    def test_cheeger_ordering(self):
        lo, hi = cheeger_bounds(hypercube(3))
        assert 0 < lo <= hi

    def test_as_row(self):
        row = analyze(hypercube(3)).as_row()
        assert row[0] == "hypercube(d=3)"
        assert len(row) == 8


def sample_result():
    return ExperimentResult(
        experiment_id="figX",
        title="Test table",
        headers=["name", "value"],
        rows=[("a", 1.5), ("b", np.float64(2.25))],
        checks={"ok": True},
        notes="hello",
    )


class TestSerialization:
    def test_json_roundtrip(self):
        res = sample_result()
        text = experiment_to_json(res)
        data = json.loads(text)
        assert data["experiment_id"] == "figX"
        assert data["rows"] == [["a", 1.5], ["b", 2.25]]
        back = experiment_from_json(text)
        assert back.experiment_id == res.experiment_id
        assert back.checks == res.checks
        assert [tuple(r) for r in back.rows] == [("a", 1.5), ("b", 2.25)]

    def test_numpy_values_serializable(self):
        res = sample_result()
        res.rows.append(("c", np.int64(7)))
        text = experiment_to_json(res)
        assert json.loads(text)["rows"][2] == ["c", 7]

    def test_csv(self):
        text = experiment_to_csv(sample_result())
        lines = text.strip().splitlines()
        assert lines[0] == "name,value"
        assert lines[1] == "a,1.5"

    def test_cli_json_output(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["butterfly25", "--json", str(tmp_path)])
        assert code == 0
        out_file = tmp_path / "butterfly25.json"
        assert out_file.exists()
        data = json.loads(out_file.read_text())
        assert data["experiment_id"] == "butterfly25"
        capsys.readouterr()
