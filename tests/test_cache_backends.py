"""Tests for the result-cache backends (jsonl + sqlite).

Covers the guarantees the batch layer depends on: both backends implement
the same interface with exact round-trips, corrupt records are counted
(never silently deserialized with invented data), size caps evict
LRU-first at exact boundaries, and the sqlite backend survives concurrent
writer processes without losing or duplicating entries.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.batch import (
    BaseResultCache,
    BatchSolver,
    ResultCache,
    SolveRequest,
    SqliteResultCache,
    instance_key,
    make_cache,
    resolve_cache_backend,
)
from repro.throughput import throughput
from repro.throughput.lp import ThroughputResult
from repro.topologies import hypercube
from repro.traffic import all_to_all

BACKENDS = [ResultCache, SqliteResultCache]


def _result(value: float = 1.5) -> ThroughputResult:
    return ThroughputResult(
        value=value,
        engine="lp",
        n_variables=7,
        n_constraints=5,
        solve_seconds=0.25,
        meta={"status": 0},
    )


# --------------------------------------------------------------- interface
class TestBackendInterface:
    @pytest.mark.parametrize("cls", BACKENDS)
    def test_round_trip_exact(self, cls, tmp_path):
        cache = cls(tmp_path)
        assert cache.get("k") is None
        cache.put("k", _result(0.123456789012345678))
        got = cache.get("k")
        assert got.value == 0.123456789012345678
        assert got.engine == "lp"
        assert got.n_variables == 7 and got.n_constraints == 5
        assert got.solve_seconds == 0.25
        assert got.meta == {"status": 0}

    @pytest.mark.parametrize("cls", BACKENDS)
    def test_persists_across_instances(self, cls, tmp_path):
        cls(tmp_path).put("k", _result(2.0))
        fresh = cls(tmp_path)
        assert len(fresh) == 1
        assert fresh.contains("k")
        assert fresh.get("k").value == 2.0

    @pytest.mark.parametrize("cls", BACKENDS)
    def test_duplicate_put_is_noop(self, cls, tmp_path):
        cache = cls(tmp_path)
        cache.put("k", _result(1.0))
        cache.put("k", _result(99.0))
        assert cache.puts == 1
        assert cache.get("k").value == 1.0

    @pytest.mark.parametrize("cls", BACKENDS)
    def test_clear_resets_counters(self, cls, tmp_path):
        cache = cls(tmp_path)
        cache.get("absent")
        cache.put("k", _result())
        cache.get("k")
        assert (cache.hits, cache.misses, cache.puts) == (1, 1, 1)
        assert cache.clear() == 1
        assert len(cache) == 0
        assert (cache.hits, cache.misses, cache.puts) == (0, 0, 0)
        assert cache.corrupt_lines == 0 and cache.evictions == 0

    @pytest.mark.parametrize("cls", BACKENDS)
    def test_stats_schema(self, cls, tmp_path):
        cache = cls(tmp_path, max_entries=10, max_mb=1.0)
        cache.put("k", _result())
        stats = cache.stats()
        assert stats["backend"] == cls.backend
        assert stats["entries"] == 1
        assert stats["corrupt_lines"] == 0
        assert stats["evictions"] == 0
        assert stats["max_entries"] == 10
        assert stats["max_bytes"] == 1024 * 1024
        assert stats["size_bytes"] > 0

    @pytest.mark.parametrize("cls", BACKENDS)
    def test_solver_is_backend_agnostic(self, cls, tmp_path):
        topo = hypercube(3)
        requests = [SolveRequest(topo, all_to_all(topo), tag="a2a")]
        solver = BatchSolver(workers=1, cache=cls(tmp_path))
        first = solver.solve_many(requests)
        warm = BatchSolver(workers=1, cache=cls(tmp_path))
        second = warm.solve_many(requests)
        assert warm.n_solved == 0 and warm.n_cache_hits == 1
        assert second[0].from_cache
        assert second[0].require().value == first[0].require().value

    def test_invalid_caps_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_entries=0)
        with pytest.raises(ValueError):
            SqliteResultCache(tmp_path, max_mb=0)


# -------------------------------------------------------------- corruption
class TestCorruptRecords:
    def test_jsonl_counts_every_corrupt_line(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("good", _result())
        with cache.path.open("a") as fh:
            fh.write("{not json\n")
            fh.write(json.dumps({"key": "no-result-field"}) + "\n")
            fh.write(json.dumps({"key": "partial", "result": {"value": 1.0}}) + "\n")
        with pytest.warns(RuntimeWarning, match="3 corrupt"):
            fresh = ResultCache(tmp_path)
            assert len(fresh) == 1
        assert fresh.corrupt_lines == 3
        assert fresh.stats()["corrupt_lines"] == 3

    def test_missing_required_fields_not_fabricated(self, tmp_path):
        # A record without engine/solver stats must be skipped, not
        # deserialized with an invented engine="lp" and zeroed stats.
        cache = ResultCache(tmp_path)
        doc = {"key": "k", "result": {"value": 2.0}}  # no engine, no stats
        cache.cache_dir.mkdir(parents=True, exist_ok=True)
        cache.path.write_text(json.dumps(doc) + "\n")
        with pytest.warns(RuntimeWarning):
            fresh = ResultCache(tmp_path)
            assert fresh.get("k") is None
        assert fresh.corrupt_lines == 1

    def test_warns_only_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.cache_dir.mkdir(parents=True, exist_ok=True)
        cache.path.write_text("{broken\n{also broken\n")
        with pytest.warns(RuntimeWarning) as record:
            len(cache)
            len(cache)
            cache.get("x")
        assert len([w for w in record if w.category is RuntimeWarning]) == 1

    def test_sqlite_corrupt_row_dropped_and_counted(self, tmp_path):
        cache = SqliteResultCache(tmp_path)
        cache.put("ok", _result())
        cache._connect().execute(
            "INSERT INTO results (key, doc, seq) VALUES ('bad', '{broken', 99)"
        )
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert cache.get("bad") is None
        assert cache.corrupt_lines == 1
        assert not cache.contains("bad")  # unreadable row was dropped
        assert cache.get("ok").value == _result().value


# --------------------------------------------------------------- eviction
class TestEviction:
    @pytest.mark.parametrize("cls", BACKENDS)
    def test_cap_hit_exactly_keeps_everything(self, cls, tmp_path):
        cache = cls(tmp_path, max_entries=3)
        for i in range(3):
            cache.put(f"k{i}", _result(float(i)))
        assert len(cache) == 3
        assert cache.evictions == 0

    @pytest.mark.parametrize("cls", BACKENDS)
    def test_cap_exceeded_evicts_oldest(self, cls, tmp_path):
        # Eviction has hysteresis (shrinks below the cap so steady-state
        # puts don't pay an eviction round each); the boundary contract is:
        # exceeding the cap brings the store back under it, LRU-first.
        cache = cls(tmp_path, max_entries=3)
        for i in range(4):
            cache.put(f"k{i}", _result(float(i)))
        assert 1 <= len(cache) <= 3
        assert cache.evictions >= 1
        assert cache.get("k0") is None  # least recently used is gone
        assert cache.get("k3").value == 3.0  # newest survives

    @pytest.mark.parametrize("cls", BACKENDS)
    def test_get_refreshes_lru_position(self, cls, tmp_path):
        cache = cls(tmp_path, max_entries=3)
        for i in range(3):
            cache.put(f"k{i}", _result(float(i)))
        cache.get("k0")  # k0 is now most recently used
        cache.put("k3", _result(3.0))
        assert cache.get("k1") is None  # k1 became the LRU victim
        assert cache.get("k0") is not None

    def test_jsonl_compaction_preserves_newest_on_disk(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        for i in range(5):
            cache.put(f"k{i}", _result(float(i)))
        # A fresh instance reads only what compaction kept on disk: at most
        # the cap, always including the newest entry, oldest gone first.
        fresh = ResultCache(tmp_path)
        assert 1 <= len(fresh) <= 2
        assert fresh.get("k4").value == 4.0
        assert fresh.get("k0") is None and fresh.get("k1") is None

    def test_steady_state_puts_do_not_compact_every_time(self, tmp_path):
        # Hysteresis: after one eviction round the store sits below the
        # cap, so the next several puts must not trigger another round.
        cache = ResultCache(tmp_path, max_entries=20)
        for i in range(21):
            cache.put(f"k{i:03d}", _result(float(i)))
        rounds_after_first = cache.evictions
        cache.put("fresh", _result(99.0))
        assert cache.evictions == rounds_after_first  # no new compaction

    def test_jsonl_byte_cap_compacts_file(self, tmp_path):
        entry_bytes = len(
            json.dumps({"key": "k0000", "result": {"value": 0.0}}) + "\n"
        )
        cache = ResultCache(tmp_path, max_mb=(entry_bytes * 40) / (1024 * 1024))
        for i in range(60):
            cache.put(f"k{i:04d}", _result(float(i)))
        assert cache.evictions > 0
        assert cache.path.stat().st_size <= cache.max_bytes
        fresh = ResultCache(tmp_path)
        assert fresh.get("k0059").value == 59.0

    def test_real_results_survive_eviction_round_trip(self, tmp_path):
        topo = hypercube(3)
        tm = all_to_all(topo)
        expected = throughput(topo, tm)
        cache = ResultCache(tmp_path, max_entries=2)
        cache.put("filler0", _result(0.0))
        cache.put("filler1", _result(1.0))
        cache.put(instance_key(topo, tm), expected)  # newest: survives
        assert cache.evictions >= 1
        fresh = ResultCache(tmp_path, max_entries=2)
        got = fresh.get(instance_key(topo, tm))
        assert got is not None and got.value == expected.value


# ------------------------------------------------------------- concurrency
def _writer_proc(cache_dir: str, start: int, count: int) -> None:
    cache = SqliteResultCache(cache_dir)
    for i in range(start, start + count):
        cache.put(
            f"key{i:04d}",
            ThroughputResult(
                value=float(i), engine="lp", n_variables=i, n_constraints=i
            ),
        )
    cache.close()


class TestSqliteConcurrency:
    def test_two_writer_processes_no_lost_or_duplicate_entries(self, tmp_path):
        # Overlapping key ranges: writes race on keys 20..39; every key
        # must land exactly once with a consistent value.
        p1 = multiprocessing.Process(target=_writer_proc, args=(str(tmp_path), 0, 40))
        p2 = multiprocessing.Process(target=_writer_proc, args=(str(tmp_path), 20, 40))
        p1.start()
        p2.start()
        p1.join(timeout=60)
        p2.join(timeout=60)
        assert p1.exitcode == 0 and p2.exitcode == 0
        cache = SqliteResultCache(tmp_path)
        assert len(cache) == 60
        for i in range(60):
            got = cache.get(f"key{i:04d}")
            assert got is not None
            assert got.value == float(i)
            assert got.n_variables == i


# ----------------------------------------------------------------- factory
class TestMakeCache:
    def test_default_is_jsonl(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_BACKEND", raising=False)
        assert isinstance(make_cache(tmp_path), ResultCache)

    def test_env_selects_sqlite(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
        assert isinstance(make_cache(tmp_path), SqliteResultCache)

    def test_argument_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
        assert isinstance(make_cache(tmp_path, backend="jsonl"), ResultCache)

    def test_caps_are_forwarded(self, tmp_path):
        cache = make_cache(tmp_path, backend="sqlite", max_entries=5, max_mb=2.0)
        assert cache.max_entries == 5
        assert cache.max_bytes == 2 * 1024 * 1024

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown cache backend"):
            make_cache(tmp_path, backend="postgres")
        with pytest.raises(ValueError):
            resolve_cache_backend("csv")

    def test_backends_are_base_instances(self, tmp_path):
        assert isinstance(ResultCache(tmp_path), BaseResultCache)
        assert isinstance(SqliteResultCache(tmp_path), BaseResultCache)
