"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    choice_without_replacement,
    ensure_rng,
    permutation_avoiding_fixed_points,
    spawn_rngs,
    stable_seed,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = ensure_rng(7).integers(0, 1_000_000)
        b = ensure_rng(7).integers(0, 1_000_000)
        assert a == b

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_seedsequence_accepted(self):
        ss = np.random.SeedSequence(5)
        assert isinstance(ensure_rng(ss), np.random.Generator)

    def test_tuple_seed_is_deterministic(self):
        a = ensure_rng(("exp", 3)).integers(0, 1_000_000)
        b = ensure_rng(("exp", 3)).integers(0, 1_000_000)
        assert a == b

    def test_different_tuples_differ(self):
        a = ensure_rng(("exp", 3)).integers(0, 2**40)
        b = ensure_rng(("exp", 4)).integers(0, 2**40)
        assert a != b


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)

    def test_distinct_parts_distinct_seeds(self):
        assert stable_seed("a", 1) != stable_seed("a", 2)

    def test_nonnegative_63bit(self):
        s = stable_seed("anything", 123, (4, 5))
        assert 0 <= s < 2**63

    def test_order_matters(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_streams_independent_and_deterministic(self):
        xs = [g.integers(0, 2**40) for g in spawn_rngs(1, 3)]
        ys = [g.integers(0, 2**40) for g in spawn_rngs(1, 3)]
        assert xs == ys
        assert len(set(xs)) == 3

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_from_generator(self):
        g = np.random.default_rng(9)
        rngs = spawn_rngs(g, 2)
        assert len(rngs) == 2

    def test_tuple_seed(self):
        rngs = spawn_rngs(("fig", 2), 2)
        assert len(rngs) == 2


class TestDerangement:
    def test_no_fixed_points(self):
        rng = ensure_rng(0)
        for n in (2, 3, 5, 17, 100):
            perm = permutation_avoiding_fixed_points(n, rng)
            assert not np.any(perm == np.arange(n))
            assert sorted(perm.tolist()) == list(range(n))

    def test_n1_raises(self):
        with pytest.raises(ValueError):
            permutation_avoiding_fixed_points(1, ensure_rng(0))

    def test_n0_empty(self):
        assert permutation_avoiding_fixed_points(0, ensure_rng(0)).size == 0


class TestChoiceWithoutReplacement:
    def test_distinct(self):
        out = choice_without_replacement(range(10), 5, ensure_rng(0))
        assert len(set(out.tolist())) == 5

    def test_too_many_raises(self):
        with pytest.raises(ValueError):
            choice_without_replacement(range(3), 5, ensure_rng(0))
