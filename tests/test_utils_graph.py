"""Tests for repro.utils.graphutils and repro.utils.matching."""

import networkx as nx
import numpy as np
import pytest

from repro.utils.graphutils import (
    all_pairs_distances,
    arcs_of,
    degree_sequence,
    edge_cut_capacity,
    is_connected,
    mean_shortest_path_length,
    random_connected_regular_graph,
    to_csr_adjacency,
)
from repro.utils.matching import max_weight_assignment
from repro.utils.rng import ensure_rng


class TestAdjacency:
    def test_simple_graph(self):
        g = nx.path_graph(3)
        adj = to_csr_adjacency(g).toarray()
        expected = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=float)
        assert np.array_equal(adj, expected)

    def test_multigraph_capacity_sums(self):
        g = nx.MultiGraph()
        g.add_nodes_from([0, 1])
        g.add_edge(0, 1)
        g.add_edge(0, 1)
        adj = to_csr_adjacency(g).toarray()
        assert adj[0, 1] == 2.0 and adj[1, 0] == 2.0

    def test_arcs_symmetric(self):
        g = nx.cycle_graph(5)
        tails, heads, caps = arcs_of(g)
        assert tails.size == 10  # 5 edges x 2 directions
        pairs = set(zip(tails.tolist(), heads.tolist()))
        assert all((v, u) in pairs for u, v in pairs)
        assert np.all(caps == 1.0)


class TestDistances:
    def test_path_graph(self):
        g = nx.path_graph(4)
        dist = all_pairs_distances(g)
        assert dist[0, 3] == 3.0
        assert dist[1, 2] == 1.0

    def test_disconnected_inf(self):
        g = nx.Graph()
        g.add_nodes_from([0, 1])
        dist = all_pairs_distances(g)
        assert np.isinf(dist[0, 1])

    def test_mean_path_length_cycle(self):
        # C4 distances: each node has two at 1, one at 2 -> mean 4/3.
        g = nx.cycle_graph(4)
        assert mean_shortest_path_length(g) == pytest.approx(4 / 3)

    def test_mean_path_length_disconnected_raises(self):
        g = nx.Graph()
        g.add_nodes_from([0, 1])
        with pytest.raises(ValueError):
            mean_shortest_path_length(g)


class TestConnectivityAndCuts:
    def test_connected(self):
        assert is_connected(nx.cycle_graph(6))

    def test_disconnected(self):
        g = nx.Graph()
        g.add_edges_from([(0, 1), (2, 3)])
        assert not is_connected(g)

    def test_empty_graph_connected(self):
        assert is_connected(nx.Graph())

    def test_edge_cut_capacity(self):
        g = nx.cycle_graph(4)
        side = np.array([True, True, False, False])
        assert edge_cut_capacity(g, side) == 2.0

    def test_degree_sequence(self):
        g = nx.star_graph(3)
        assert degree_sequence(g).tolist() == [3, 1, 1, 1]


class TestRandomRegular:
    def test_regular_and_connected(self):
        g = random_connected_regular_graph(3, 12, ensure_rng(0))
        assert all(d == 3 for _, d in g.degree())
        assert nx.is_connected(g)

    def test_bad_parity_raises(self):
        with pytest.raises(ValueError):
            random_connected_regular_graph(3, 7, ensure_rng(0))

    def test_degree_too_large_raises(self):
        with pytest.raises(ValueError):
            random_connected_regular_graph(8, 6, ensure_rng(0))


class TestAssignment:
    def test_simple_max_weight(self):
        w = np.array([[0.0, 5.0], [5.0, 0.0]])
        assignment, total = max_weight_assignment(w, forbid_diagonal=True)
        assert assignment.tolist() == [1, 0]
        assert total == 10.0

    def test_diagonal_forbidden(self):
        # Diagonal has huge weight but must be avoided.
        w = np.full((3, 3), 1.0)
        np.fill_diagonal(w, 100.0)
        assignment, total = max_weight_assignment(w, forbid_diagonal=True)
        assert not np.any(assignment == np.arange(3))
        assert total == 3.0

    def test_allows_diagonal_when_permitted(self):
        w = np.eye(2) * 10
        assignment, total = max_weight_assignment(w, forbid_diagonal=False)
        assert assignment.tolist() == [0, 1]
        assert total == 20.0

    def test_nonsquare_raises(self):
        with pytest.raises(ValueError):
            max_weight_assignment(np.ones((2, 3)))

    def test_nonfinite_raises(self):
        w = np.array([[np.inf, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            max_weight_assignment(w)

    def test_n1_diagonal_free_raises(self):
        with pytest.raises(ValueError):
            max_weight_assignment(np.array([[1.0]]), forbid_diagonal=True)

    def test_empty(self):
        assignment, total = max_weight_assignment(np.empty((0, 0)))
        assert assignment.size == 0 and total == 0.0
