"""Tests for the executable theorems (duality, Theorem 1, Theorem 2)."""

import networkx as nx
import numpy as np
import pytest

from repro.theory import (
    sparsest_cut_lp_relaxation,
    theorem1_separation,
    verify_theorem2,
)
from repro.topologies import hypercube, jellyfish, make_topology
from repro.traffic import (
    TrafficMatrix,
    all_to_all,
    longest_matching,
    random_matching,
)
from repro.throughput import throughput


class TestTheorem3Duality:
    """The metric LP relaxation of sparsest cut equals throughput exactly."""

    def test_cycle(self, tiny_cycle):
        tm = all_to_all(tiny_cycle)
        primal = throughput(tiny_cycle, tm).value
        dual = sparsest_cut_lp_relaxation(tiny_cycle, tm)
        assert dual == pytest.approx(primal, rel=1e-5)

    def test_complete(self, tiny_complete):
        tm = all_to_all(tiny_complete)
        assert sparsest_cut_lp_relaxation(tiny_complete, tm) == pytest.approx(
            throughput(tiny_complete, tm).value, rel=1e-5
        )

    def test_hypercube_matching(self, small_hypercube):
        tm = longest_matching(small_hypercube)
        assert sparsest_cut_lp_relaxation(small_hypercube, tm) == pytest.approx(
            throughput(small_hypercube, tm).value, rel=1e-5
        )

    def test_random_graph_random_tm(self):
        topo = jellyfish(10, 3, seed=4)
        tm = random_matching(topo, seed=1)
        assert sparsest_cut_lp_relaxation(topo, tm) == pytest.approx(
            throughput(topo, tm).value, rel=1e-5
        )

    def test_size_limit(self):
        topo = jellyfish(18, 4, seed=0)
        with pytest.raises(ValueError):
            sparsest_cut_lp_relaxation(topo, all_to_all(topo))


class TestTheorem2:
    def test_holds_for_standard_tms(self, small_jellyfish):
        tms = {
            "rm": random_matching(small_jellyfish, seed=0),
            "lm": longest_matching(small_jellyfish),
        }
        report = verify_theorem2(small_jellyfish, tms)
        assert report.holds
        assert all(r >= 1.0 - 1e-9 for r in report.ratios.values())

    def test_rejects_non_hose_tm(self, small_jellyfish):
        n = small_jellyfish.n_switches
        d = np.zeros((n, n))
        d[0, 1] = 5.0  # egress 5 from a 1-server node
        with pytest.raises(ValueError):
            verify_theorem2(small_jellyfish, {"bad": TrafficMatrix(demand=d)})

    def test_tight_on_hypercube(self, medium_hypercube):
        # LM achieves exactly the bound on hypercubes: ratio 1.
        report = verify_theorem2(
            medium_hypercube, {"lm": longest_matching(medium_hypercube)}
        )
        assert report.ratios["lm"] == pytest.approx(1.0, rel=1e-6)


class TestTheorem1:
    def test_separation_points(self):
        pts = theorem1_separation(
            n_cluster=32,
            d=3,
            beta=1,
            core=12,
            core_degree=4,
            path_lengths=(2, 3),
            seed=0,
        )
        names = [p.name for p in pts]
        assert names == ["A", "B(p=2)", "B(p=3)"]
        for p in pts:
            assert p.sparse_cut >= p.throughput - 1e-9
            assert p.gap >= 1.0 - 1e-9

    def test_gap_grows_with_subdivision(self):
        pts = theorem1_separation(
            n_cluster=32,
            d=3,
            beta=1,
            core=12,
            core_degree=4,
            path_lengths=(1, 3),
            seed=1,
        )
        by_name = {p.name: p for p in pts}
        assert by_name["B(p=3)"].gap > by_name["B(p=1)"].gap * 0.999
