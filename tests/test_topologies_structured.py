"""Structural identity tests for the structured topology families.

Every family has exact size/degree/server-count formulas; these are the
strongest cheap checks that a constructor builds the topology the paper
evaluates.
"""

import networkx as nx
import numpy as np
import pytest

from repro.topologies import (
    bcube,
    dcell,
    dcell_server_count,
    dragonfly,
    fat_tree,
    flattened_butterfly,
    hypercube,
)


class TestHypercube:
    @pytest.mark.parametrize("dim", [1, 2, 3, 5, 7])
    def test_sizes(self, dim):
        t = hypercube(dim)
        assert t.n_switches == 2**dim
        assert t.n_links == dim * 2 ** (dim - 1)
        assert np.all(t.degree_sequence() == dim)

    def test_distances_are_hamming(self):
        t = hypercube(4)
        dist = nx.shortest_path_length(t.graph, source=0)
        for v, d in dist.items():
            assert d == bin(v).count("1")

    def test_servers_per_node(self):
        t = hypercube(3, servers_per_node=4)
        assert t.n_servers == 32

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            hypercube(0)


class TestFatTree:
    @pytest.mark.parametrize("k", [4, 6, 8])
    def test_sizes(self, k):
        t = fat_tree(k)
        assert t.n_switches == 5 * k * k // 4
        assert t.n_servers == k**3 // 4
        # Every switch uses exactly k ports (edge: k/2 servers + k/2 up).
        deg = t.degree_sequence()
        servers = t.servers
        assert np.all(deg + servers == k)

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fat_tree(5)

    def test_core_reaches_every_pod(self):
        t = fat_tree(4)
        # Cores are nodes 0..3; each must connect to one agg per pod.
        for core in range(4):
            pods = {n // 2 for n in t.graph.neighbors(core)}
            assert len(pods) == 4

    def test_servers_only_on_edge_layer(self):
        t = fat_tree(4)
        # Layout: 4 cores, 8 agg, 8 edge.
        assert np.all(t.servers[:12] == 0)
        assert np.all(t.servers[12:] == 2)


class TestBCube:
    @pytest.mark.parametrize("n,k", [(2, 1), (2, 3), (4, 1), (3, 2)])
    def test_sizes(self, n, k):
        t = bcube(n, k)
        assert t.n_servers == n ** (k + 1)
        assert t.n_switches == n ** (k + 1) + (k + 1) * n**k

    def test_server_degree_is_levels(self):
        t = bcube(2, 2)
        deg = t.degree_sequence()
        # servers occupy the first n^(k+1) ids with degree k+1
        assert np.all(deg[: t.n_servers] == 3)
        # switches have degree n
        assert np.all(deg[t.n_servers :] == 2)

    def test_bcube0_is_star(self):
        t = bcube(4, 0)
        assert t.n_switches == 5  # 4 servers + 1 switch
        assert t.n_links == 4

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            bcube(1, 1)


class TestDCell:
    def test_server_count_formula(self):
        assert dcell_server_count(5, 0) == 5
        assert dcell_server_count(5, 1) == 30
        assert dcell_server_count(5, 2) == 930
        assert dcell_server_count(2, 2) == 42

    @pytest.mark.parametrize("n,k", [(2, 1), (3, 1), (5, 1), (2, 2)])
    def test_sizes(self, n, k):
        t = dcell(n, k)
        expect = dcell_server_count(n, k)
        assert t.n_servers == expect
        assert t.n_switches == expect + expect // n

    def test_level1_server_links(self):
        # DCell(2,1): 3 copies of DCell_0(2 servers); one link per copy pair.
        t = dcell(2, 1)
        server_server = [
            (u, v)
            for u, v in t.graph.edges()
            if t.servers[u] == 1 and t.servers[v] == 1
        ]
        assert len(server_server) == 3

    def test_degrees(self):
        t = dcell(4, 1)
        deg = t.degree_sequence()
        # Each server: 1 switch link + 1 level-1 link = 2.
        assert np.all(deg[: t.n_servers] == 2)
        assert np.all(deg[t.n_servers :] == 4)


class TestDragonfly:
    @pytest.mark.parametrize("h", [1, 2, 3])
    def test_sizes(self, h):
        t = dragonfly(h)
        a = 2 * h
        g = a * h + 1
        assert t.n_switches == g * a
        assert t.n_servers == g * a * h
        # Degree: (a - 1) intra + h global.
        assert np.all(t.degree_sequence() == a - 1 + h)

    def test_one_global_link_per_group_pair(self):
        t = dragonfly(2)
        a, g = 4, 9
        seen = set()
        for u, v in t.graph.edges():
            gu, gv = u // a, v // a
            if gu != gv:
                pair = (min(gu, gv), max(gu, gv))
                assert pair not in seen, "duplicate global link"
                seen.add(pair)
        assert len(seen) == g * (g - 1) // 2

    def test_groups_are_cliques(self):
        t = dragonfly(2)
        for grp in range(9):
            nodes = range(grp * 4, grp * 4 + 4)
            for i in nodes:
                for j in nodes:
                    if i < j:
                        assert t.graph.has_edge(i, j)


class TestFlattenedButterfly:
    def test_butterfly25(self):
        t = flattened_butterfly(5, 3)
        assert t.n_switches == 25
        assert t.n_servers == 125
        assert np.all(t.degree_sequence() == 8)

    @pytest.mark.parametrize("k,n", [(2, 3), (2, 5), (4, 3), (3, 4)])
    def test_sizes(self, k, n):
        t = flattened_butterfly(k, n)
        dims = n - 1
        assert t.n_switches == k**dims
        assert np.all(t.degree_sequence() == dims * (k - 1))
        assert t.n_servers == k**dims * k

    def test_2ary_is_hypercube(self):
        fb = flattened_butterfly(2, 5)
        hc = hypercube(4)
        assert nx.is_isomorphic(fb.graph, hc.graph)

    def test_invalid(self):
        with pytest.raises(ValueError):
            flattened_butterfly(1, 3)
        with pytest.raises(ValueError):
            flattened_butterfly(4, 1)
