#!/usr/bin/env python3
"""HyperX design search: bisection targets vs delivered throughput (Fig. 7).

Runs the least-cost regular HyperX design search at several terminal counts
and bisection targets, then measures what the designs actually deliver under
near-worst-case traffic — illustrating the paper's point that designing to a
bisection target does not guarantee throughput.

Run:  python examples/design_hyperx.py
"""

from repro import longest_matching, throughput
from repro.evaluation import relative_throughput
from repro.evaluation.experiments.factories import lm_factory
from repro.topologies import design_hyperx, hyperx_for_terminals


def main() -> None:
    radix = 24
    print(f"switch radix = {radix}\n")
    print(
        f"{'target':>6s} {'terminals':>9s} {'design (L,S,K,T)':>17s} "
        f"{'switches':>8s} {'achieved beta':>13s} {'rel T(LM)':>9s}"
    )
    print("-" * 72)
    for beta in (0.2, 0.4, 0.5):
        for n_term in (24, 48, 96):
            design = design_hyperx(radix, n_term, beta)
            if design is None:
                print(f"{beta:6.1f} {n_term:9d}        infeasible")
                continue
            topo = hyperx_for_terminals(radix, n_term, beta)
            rel = relative_throughput(topo, lm_factory, samples=2, seed=0).relative
            print(
                f"{beta:6.1f} {n_term:9d} "
                f"{f'({design.L},{design.S},{design.K},{design.T})':>17s} "
                f"{design.n_switches:8d} {design.relative_bisection:13.3f} "
                f"{rel:9.3f}"
            )
    print(
        "\nNote how designs meeting the *same* bisection target deliver "
        "different\nrelative throughputs at different sizes — bisection is "
        "not a throughput proxy."
    )


if __name__ == "__main__":
    main()
