#!/usr/bin/env python3
"""Head-to-head topology comparison (a miniature of the paper's Figs. 4-6).

For a slate of topology families at comparable sizes, compute throughput
under all-to-all and near-worst-case traffic, normalized two ways:

* by the Theorem-2 lower bound (how close to worst case is the TM?), and
* by a same-equipment random graph (how good is the *topology*?).

Run:  python examples/compare_topologies.py
"""

from repro import (
    all_to_all,
    dcell,
    fat_tree,
    hypercube,
    jellyfish,
    longest_matching,
    longhop,
    slimfly,
    throughput,
)
from repro.evaluation import relative_throughput
from repro.evaluation.experiments.factories import lm_factory


def main() -> None:
    topologies = [
        hypercube(5),
        fat_tree(4),
        dcell(4, 1),
        longhop(5),
        slimfly(5),
        jellyfish(32, 5, seed=1),
    ]
    header = (
        f"{'topology':24s} {'servers':>7s} {'T(A2A)':>8s} {'T(LM)':>8s} "
        f"{'LM/LB':>6s} {'rel(LM)':>8s}"
    )
    print(header)
    print("-" * len(header))
    for topo in topologies:
        a2a = throughput(topo, all_to_all(topo)).value
        lm = throughput(topo, longest_matching(topo)).value
        rel = relative_throughput(topo, lm_factory, samples=2, seed=0).relative
        print(
            f"{topo.name:24s} {topo.n_servers:7d} {a2a:8.3f} {lm:8.3f} "
            f"{lm / (a2a / 2):6.2f} {rel:8.3f}"
        )
    print(
        "\nLM/LB = 1.00 means longest matching provably reached the "
        "worst case;\nrel(LM) < 1 means a random graph with identical "
        "equipment outperforms the topology under near-worst-case traffic."
    )


if __name__ == "__main__":
    main()
