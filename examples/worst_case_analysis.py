#!/usr/bin/env python3
"""Near-worst-case traffic analysis (a miniature of the paper's Fig. 2).

Shows the TM hardness ladder on a hypercube — all-to-all down to longest
matching and the theoretical lower bound — and demonstrates *why* longest
matching is hard: it maximizes demand-weighted path length, pushing the
volumetric bound down to the link-capacity limit.

Run:  python examples/worst_case_analysis.py
"""

from repro import (
    all_to_all,
    hypercube,
    kodialam_tm,
    longest_matching,
    random_matching,
    throughput,
    volumetric_upper_bound,
)
from repro.utils.graphutils import all_pairs_distances


def main() -> None:
    topo = hypercube(5)
    print(f"topology: {topo}\n")
    dist = all_pairs_distances(topo.graph)

    ladder = [
        ("all-to-all", all_to_all(topo)),
        ("random matching (10)", random_matching(topo, n_matchings=10, seed=0)),
        ("random matching (2)", random_matching(topo, n_matchings=2, seed=0)),
        ("random matching (1)", random_matching(topo, n_matchings=1, seed=0)),
        ("Kodialam TM", kodialam_tm(topo)),
        ("longest matching", longest_matching(topo)),
    ]
    a2a_value = throughput(topo, ladder[0][1]).value
    lb = a2a_value / 2.0

    print(f"{'traffic matrix':24s} {'throughput':>10s} {'avg dist':>9s} "
          f"{'volumetric UB':>13s}")
    print("-" * 60)
    for name, tm in ladder:
        t = throughput(topo, tm).value
        avg_d = tm.demand_weighted_distance(dist)
        ub = volumetric_upper_bound(topo, tm)
        print(f"{name:24s} {t:10.4f} {avg_d:9.3f} {ub:13.4f}")
    print("-" * 60)
    print(f"{'lower bound (T_A2A/2)':24s} {lb:10.4f}")
    print(
        "\nReading the table: throughput falls as the TM's average flow "
        "distance rises\n(the volumetric limit), and longest matching "
        "pins the hypercube exactly to the\nTheorem-2 lower bound — its "
        "antipodal pairing saturates every unidirectional link."
    )


if __name__ == "__main__":
    main()
