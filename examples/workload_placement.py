#!/usr/bin/env python3
"""Rack-placement randomization on a skewed real-world TM (paper Figs. 13-14).

Places a synthetic Facebook frontend TM (hot cache racks, quantized
power-of-ten weights) on several topologies, in rack order ("sampled") and
with randomized placement ("shuffled"), and reports the throughput gain.
Shuffling helps structured topologies; expanders barely notice.

Run:  python examples/workload_placement.py
"""

import numpy as np

from repro import (
    hypercube,
    jellyfish,
    longhop,
    throughput,
    tm_facebook_frontend,
    tm_facebook_hadoop,
)
from repro.topologies import dcell, flattened_butterfly
from repro.traffic import attach_rack_tm


def gain(topo, rack_tm, shuffles=3) -> tuple[float, float]:
    """(sampled, mean shuffled) absolute throughput for one topology."""
    sampled = throughput(topo, attach_rack_tm(rack_tm, topo, shuffle=False)).value
    shuffled = float(
        np.mean(
            [
                throughput(
                    topo, attach_rack_tm(rack_tm, topo, shuffle=True, seed=i)
                ).value
                for i in range(shuffles)
            ]
        )
    )
    return sampled, shuffled


def main() -> None:
    topologies = [
        hypercube(6),
        flattened_butterfly(4, 3),
        dcell(5, 1),
        longhop(6),
        jellyfish(64, 6, seed=0),
    ]
    for tm_name, rack_tm in (
        ("TM-H (Hadoop, near-uniform)", tm_facebook_hadoop(seed=0)),
        ("TM-F (frontend, skewed)", tm_facebook_frontend(seed=0)[0]),
    ):
        print(f"\n=== {tm_name} ===")
        print(f"{'topology':26s} {'sampled':>9s} {'shuffled':>9s} {'gain':>7s}")
        print("-" * 55)
        for topo in topologies:
            sampled, shuffled = gain(topo, rack_tm)
            print(
                f"{topo.name:26s} {sampled:9.4f} {shuffled:9.4f} "
                f"{shuffled / sampled:6.2f}x"
            )
    print(
        "\nUnder the skewed TM-F, randomizing placement spreads the hot racks "
        "and lifts\nthroughput on structured topologies — the paper's "
        "workload-placement insight."
    )


if __name__ == "__main__":
    main()
