#!/usr/bin/env python3
"""Why cuts are a weak substitute for throughput (paper §II-B, Fig. 3).

Computes sparsest-cut estimates and exact throughput side by side on small
networks — including the paper's 25-switch flattened butterfly where the cut
strictly overestimates worst-case throughput — and verifies Theorem 3
(LP duality) numerically on a small instance.

Run:  python examples/cuts_vs_throughput.py
"""

from repro import (
    bisection_bandwidth,
    find_sparse_cut,
    flattened_butterfly,
    hypercube,
    jellyfish,
    longest_matching,
    throughput,
)
from repro.theory import sparsest_cut_lp_relaxation
from repro.topologies import natural_network


def main() -> None:
    networks = [
        hypercube(4),
        flattened_butterfly(5, 3),  # the paper's §III-B case study
        jellyfish(20, 4, seed=3),
        natural_network("community", 24, seed=5),
    ]
    print(f"{'network':28s} {'throughput':>10s} {'sparse cut':>10s} "
          f"{'bisection':>10s} {'cut/tput':>9s}")
    print("-" * 73)
    for topo in networks:
        tm = longest_matching(topo)
        t = throughput(topo, tm).value
        cut = find_sparse_cut(topo, tm).best.sparsity
        bis = bisection_bandwidth(topo, tm).sparsity
        print(
            f"{topo.name:28s} {t:10.4f} {cut:10.4f} {bis:10.4f} {cut / t:9.3f}"
        )
    print(
        "\nEvery cut upper-bounds throughput, but the gap varies per network "
        "—\nso ranking topologies by cuts can rank them wrongly (Fig. 1)."
    )

    # Theorem 3: the exact dual of throughput is the metric LP relaxation of
    # sparsest cut; on a small graph we can solve both and watch them agree.
    topo = jellyfish(10, 3, seed=0)
    tm = longest_matching(topo)
    primal = throughput(topo, tm).value
    dual = sparsest_cut_lp_relaxation(topo, tm)
    print(
        f"\nTheorem 3 on {topo.name}: throughput = {primal:.6f}, "
        f"metric-relaxation = {dual:.6f} (equal by strong duality)"
    )


if __name__ == "__main__":
    main()
