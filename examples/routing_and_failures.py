#!/usr/bin/env python3
"""Routing gaps and failure robustness (paper §V + benchmark extension).

1. How much throughput do realistic routing schemes forfeit versus the
   optimal flow the paper measures?  (§V: "single-path routing can perform
   significantly differently than multipath.")
2. How gracefully does each topology degrade as random links fail?

Run:  python examples/routing_and_failures.py
"""

from repro import fat_tree, hypercube, jellyfish
from repro.evaluation.experiments.factories import lm_factory
from repro.evaluation.failures import failure_sweep
from repro.routing import routing_gap_report
from repro.traffic import all_to_all, longest_matching


def main() -> None:
    print("=== routing gap: what a routing scheme forfeits (§V) ===")
    print(f"{'topology':22s} {'tm':4s} {'optimal':>8s} {'ecmp':>7s} "
          f"{'1-path':>7s} {'ecmp/opt':>8s} {'1p/opt':>7s}")
    print("-" * 70)
    for topo in (hypercube(4), fat_tree(4), jellyfish(20, 4, seed=0)):
        for tm_name, tm in (("A2A", all_to_all(topo)), ("LM", longest_matching(topo))):
            rep = routing_gap_report(topo, tm)
            print(
                f"{topo.name:22s} {tm_name:4s} {rep.optimal:8.3f} "
                f"{rep.ecmp:7.3f} {rep.single_path:7.3f} "
                f"{rep.ecmp_gap:8.2f} {rep.single_path_gap:7.2f}"
            )
    print(
        "\nECMP matches the optimum on symmetric networks but not on random "
        "graphs;\nsingle-path routing forfeits most of a hypercube's "
        "worst-case capacity —\nwhy the paper measures topologies with the "
        "flow LP, not a routing scheme."
    )

    print("\n=== link-failure robustness (near-worst-case traffic) ===")
    print(f"{'topology':22s} " + "".join(f"{f'{int(100*f)}% fail':>10s}" for f in (0.0, 0.05, 0.1, 0.2)))
    print("-" * 65)
    for topo in (hypercube(4), fat_tree(4), jellyfish(20, 4, seed=1)):
        curve = failure_sweep(
            topo, lm_factory, fractions=(0.0, 0.05, 0.1, 0.2), samples=2, seed=0
        )
        cells = "".join(f"{v:10.3f}" for v in curve.relative)
        print(f"{topo.name:22s} {cells}")
    print("\n(Values are throughput relative to the failure-free network.)")


if __name__ == "__main__":
    main()
