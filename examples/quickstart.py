#!/usr/bin/env python3
"""Quickstart: measure a topology's throughput the way the paper does.

Builds a Jellyfish network, evaluates it under the three headline traffic
matrices (all-to-all, random matching, longest matching), checks the
Theorem-2 lower bound, and compares against a same-equipment random graph.

Run:  python examples/quickstart.py
"""

from repro import (
    all_to_all,
    jellyfish,
    longest_matching,
    random_matching,
    relative_throughput,
    throughput,
    worst_case_lower_bound,
)
from repro.evaluation.experiments.factories import lm_factory


def main() -> None:
    # 1. Build a topology: 32 switches, degree 5, one server each.
    topo = jellyfish(32, 5, seed=42)
    print(f"topology: {topo}")

    # 2. Throughput under the TM ladder (absolute, hose-tight units).
    tms = {
        "all-to-all": all_to_all(topo),
        "random matching": random_matching(topo, seed=0),
        "longest matching (near-worst-case)": longest_matching(topo),
    }
    print("\nthroughput by traffic matrix:")
    for name, tm in tms.items():
        res = throughput(topo, tm)
        print(f"  {name:36s} {res.value:.4f}   (LP: {res.n_variables} vars, "
              f"{res.solve_seconds:.2f}s)")

    # 3. The TM-independent worst-case lower bound (Theorem 2): T_A2A / 2.
    lb = worst_case_lower_bound(topo)
    print(f"\nworst-case lower bound (T_A2A / 2): {lb:.4f}")
    lm_value = throughput(topo, tms["longest matching (near-worst-case)"]).value
    print(f"longest matching / lower bound:     {lm_value / lb:.3f}  "
          "(1.0 would be a provably worst-case TM)")

    # 4. Relative throughput: normalize by a same-equipment random graph —
    #    the paper's apples-to-apples comparison across topologies.
    rel = relative_throughput(topo, lm_factory, samples=3, seed=7)
    print(f"\nrelative throughput vs same-equipment random graph: "
          f"{rel.relative:.3f}")
    print("(Jellyfish *is* a random graph, so this is ~1 by construction.)")


if __name__ == "__main__":
    main()
