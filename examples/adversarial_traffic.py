#!/usr/bin/env python3
"""The paper's future-work directions, implemented (paper §VI).

1. *Even-worse-case traffic*: local search over matching TMs starting from
   longest matching, with the Theorem-2 bound as a stopping certificate.
2. *Throughput-aware task placement*: local search over rack placements of a
   skewed TM, beating random shuffling.

Run:  python examples/adversarial_traffic.py
"""

from repro import hypercube, jellyfish, tm_facebook_frontend
from repro.evaluation import optimize_placement
from repro.traffic import worst_case_search


def main() -> None:
    # --- 1. adversarial TM search -------------------------------------
    print("=== even-worse-case traffic search ===")
    for topo in (hypercube(4), jellyfish(16, 4, seed=3)):
        res = worst_case_search(topo, max_evaluations=30, seed=0)
        print(
            f"{topo.name:22s} LM throughput {res.start_throughput:.4f} -> "
            f"{res.throughput:.4f}  (bound {res.lower_bound:.4f}, "
            f"gap {res.gap_to_bound:.3f}, {res.n_evaluations} LP evals)"
        )
    print(
        "gap = 1.0 means the search *proved* worst case via Theorem 2 "
        "(hypercubes stop instantly;\nrandom graphs leave a small gap — "
        "exactly the paper's open question)."
    )

    # --- 2. placement optimization ------------------------------------
    print("\n=== throughput-aware placement of a skewed TM ===")
    topo = hypercube(5)
    rack_tm, _roles = tm_facebook_frontend(n_racks=32, seed=0)
    res = optimize_placement(topo, rack_tm, max_evaluations=30, seed=1)
    print(
        f"{topo.name}: sampled placement {res.baseline_throughput:.4f} -> "
        f"optimized {res.throughput:.4f}  ({res.gain:.2f}x, "
        f"{res.n_evaluations} LP evals)"
    )
    print(
        "Random shuffling already helps skewed TMs (Fig. 14); targeted "
        "search does at least as well."
    )


if __name__ == "__main__":
    main()
