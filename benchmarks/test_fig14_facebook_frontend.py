"""Fig. 14: Facebook frontend TM-F, sampled vs shuffled placement

Regenerates the paper artifact '`fig14`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_fig14(run_paper_experiment):
    run_paper_experiment("fig14")
