"""Fig. 2: TM hardness ladder on hypercube, random graph, fat tree

Regenerates the paper artifact '`fig2`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_fig2(run_paper_experiment):
    run_paper_experiment("fig2")
