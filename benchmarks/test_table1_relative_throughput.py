"""Table I: relative throughput at the largest size tested

Regenerates the paper artifact '`table1`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_table1(run_paper_experiment):
    run_paper_experiment("table1")
