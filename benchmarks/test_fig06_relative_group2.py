"""Fig. 6: relative throughput vs servers (expander families)

Regenerates the paper artifact '`fig6`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_fig6(run_paper_experiment):
    run_paper_experiment("fig6")
