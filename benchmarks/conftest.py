"""Benchmark harness glue.

Each bench runs one paper-artifact experiment exactly once (pedantic mode:
these are minutes-long LP sweeps, not microbenchmarks), prints the
reproduced rows — the same rows/series the paper's table or figure reports —
and asserts the experiment's shape checks.

Scale is controlled by REPRO_SCALE (small | medium | large); see DESIGN.md.
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import run_experiment
from repro.evaluation.runner import scale_from_env


@pytest.fixture
def run_paper_experiment(benchmark, capsys):
    """Run an experiment under pytest-benchmark and validate its checks."""

    def _run(experiment_id: str, seed: int = 0):
        scale = scale_from_env()

        def once():
            return run_experiment(experiment_id, scale=scale, seed=seed)

        result = benchmark.pedantic(once, rounds=1, iterations=1, warmup_rounds=0)
        with capsys.disabled():
            print()
            print(result.render())
        failed = [k for k, v in result.checks.items() if not v]
        assert not failed, f"{experiment_id}: shape checks failed: {failed}"
        return result

    return _run
