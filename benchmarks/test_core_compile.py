"""Perf benchmark for the compiled instance core (repro.core.ArcGraph).

Times the three hot paths the compile step was built for, before-vs-after,
on a ``large``-profile topology:

* **arcs extraction** — walking the networkx graph per call (the seed
  behavior) vs returning the compiled core's cached arrays;
* **key hashing** — the v1 ``instance_key`` (full arc/TM array re-hash +
  lexsort per request) vs the v2 digest-composition key;
* **worker payload** — pickled ``SolveRequest`` bytes with the graph-
  carrying topology vs the compiled array form pool workers now receive.

Results (medians, speedups, payload sizes) are written to
``BENCH_core.json`` at the repo root so the perf trajectory is recorded
run over run.  The assertions are deliberately loose (compiled paths must
not be dramatically slower); the JSON carries the real numbers.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import time
from pathlib import Path

import numpy as np

from repro.batch import SolveRequest, instance_key
from repro.topologies.jellyfish import jellyfish
from repro.traffic import all_to_all, longest_matching
from repro.utils.graphutils import arcs_of

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_core.json"

#: A `large`-scale instance (ROADMAP profile: hundreds of switches).
N_SWITCHES = 260
DEGREE = 12


def _median_seconds(fn, repeats: int = 9) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def _legacy_instance_key(topology, tm, engine="lp", params=None) -> str:
    """The pre-core (v1) key: re-walks and re-hashes the whole instance."""
    tails, heads, caps = arcs_of(topology.graph)
    order = np.lexsort((heads, tails))
    src, dst, weights = tm.pairs()
    h = hashlib.sha256()
    h.update(b"repro-batch-v1")
    h.update(b"\x00n\x00" + str(topology.n_switches).encode())
    h.update(b"\x00arcs\x00")
    h.update(np.ascontiguousarray(tails[order], dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(heads[order], dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(caps[order], dtype=np.float64).tobytes())
    h.update(b"\x00tm\x00" + str(tm.n_nodes).encode())
    h.update(np.ascontiguousarray(src, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(dst, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(weights, dtype=np.float64).tobytes())
    h.update(b"\x00engine\x00" + engine.encode())
    h.update(b"\x00params\x00" + repr(sorted((params or {}).items())).encode())
    return h.hexdigest()


def test_core_compile_hot_paths_and_record():
    topo = jellyfish(N_SWITCHES, DEGREE, seed=0)
    tm = all_to_all(topo)
    core = topo.compile()  # pay the one-time compile before timing
    tm.content_digest()

    before_arcs = _median_seconds(lambda: arcs_of(topo.graph))
    after_arcs = _median_seconds(lambda: topo.arcs())

    before_key = _median_seconds(lambda: _legacy_instance_key(topo, tm))
    after_key = _median_seconds(lambda: instance_key(topo, tm))

    # Payload sizes on the sweeps' canonical near-worst-case TM (a
    # matching: O(n) nonzeros), where both the graph swap and the sparse
    # TM wire form bite; legacy = graph-carrying topology + dense demand.
    lm = longest_matching(topo)
    req = SolveRequest(topo, lm, engine="lp")

    def legacy_wire_form():
        # What the seed shipped per job: the networkx graph plus the dense
        # demand block (and the request envelope).
        return pickle.dumps(
            {
                "graph": topo.graph,
                "servers": topo.servers,
                "demand": lm.demand,
                "engine": req.engine,
                "params": req.params,
                "tag": req.tag,
            }
        )

    legacy_payload = legacy_wire_form()
    payload = pickle.dumps(req)
    before_pickle = _median_seconds(legacy_wire_form)
    after_pickle = _median_seconds(lambda: pickle.dumps(req))

    record = {
        "benchmark": "core_compile",
        "topology": topo.name,
        "n_switches": topo.n_switches,
        "n_arcs": core.n_arcs,
        "arcs_extraction": {
            "networkx_walk_s": before_arcs,
            "compiled_s": after_arcs,
            "speedup": before_arcs / max(after_arcs, 1e-12),
        },
        "instance_key": {
            "v1_full_rehash_s": before_key,
            "v2_digest_s": after_key,
            "speedup": before_key / max(after_key, 1e-12),
        },
        "worker_payload": {
            "graph_bytes": len(legacy_payload),
            "array_bytes": len(payload),
            "shrink_factor": len(legacy_payload) / max(len(payload), 1),
            "graph_pickle_s": before_pickle,
            "array_pickle_s": after_pickle,
        },
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    # The compiled paths must win decisively on this instance size; allow
    # wide margins so CI noise cannot flake the build.
    assert after_arcs < before_arcs, record["arcs_extraction"]
    assert after_key < before_key, record["instance_key"]
    assert len(payload) < len(legacy_payload), record["worker_payload"]
    assert b"networkx" not in payload
