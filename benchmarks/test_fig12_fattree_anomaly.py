"""Fig. 12: absolute throughput under elephants at matched equipment

Regenerates the paper artifact '`fig12`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_fig12(run_paper_experiment):
    run_paper_experiment("fig12")
