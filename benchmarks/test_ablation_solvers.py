"""Ablation: LP vs MWU engines; LM vs Kodialam TM cost

Regenerates the paper artifact '`ablation-lp`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_ablation_lp(run_paper_experiment):
    run_paper_experiment("ablation-lp")
