"""Bench: sharded decomposition vs the dense LP on one mid-size instance.

Not a paper artifact — this pins the scaling claim of the sharded engine:
per-shard LP size is a fraction of the dense LP's, the certified gap
closes, and the bounded-memory (no-fallback) path stays within a few
percent of exact.  Scale-insensitive by design (one fixed instance), so
it stays seconds-long under every ``REPRO_SCALE``.
"""

from __future__ import annotations

import pytest

from repro.throughput import solve_throughput_sharded, throughput
from repro.topologies import jellyfish
from repro.traffic import all_to_all


@pytest.fixture(scope="module")
def instance():
    topo = jellyfish(40, 5, seed=17)
    return topo, all_to_all(topo)


def test_dense_lp_bench(benchmark, instance, capsys):
    topo, tm = instance
    result = benchmark.pedantic(
        lambda: throughput(topo, tm), rounds=1, iterations=1, warmup_rounds=0
    )
    with capsys.disabled():
        print(
            f"\n[dense] value={result.value:.6f} vars={result.n_variables} "
            f"solve={result.solve_seconds:.2f}s"
        )
    assert result.value > 0


def test_sharded_engine_bench(benchmark, instance, capsys):
    topo, tm = instance
    dense = throughput(topo, tm)

    def once():
        return solve_throughput_sharded(
            topo, tm, blocks=4, max_rounds=16, exact_fallback=False
        )

    result = benchmark.pedantic(once, rounds=1, iterations=1, warmup_rounds=0)
    meta = result.meta
    with capsys.disabled():
        print(
            f"\n[sharded] lb={meta['lower_bound']:.6f} ub={meta['upper_bound']:.6f} "
            f"gap={meta['relative_gap']:.2e} shard_vars={result.n_variables} "
            f"(dense {dense.n_variables}) rounds={meta['rounds']}"
        )
    assert result.n_variables < dense.n_variables
    assert meta["lower_bound"] <= dense.value * (1 + 1e-9)
    assert meta["upper_bound"] >= dense.value * (1 - 1e-9)
    assert meta["relative_gap"] < 0.05
