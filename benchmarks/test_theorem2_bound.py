"""Theorem 2: every hose TM achieves at least half of A2A

Regenerates the paper artifact '`theorem2`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_theorem2(run_paper_experiment):
    run_paper_experiment("theorem2")
