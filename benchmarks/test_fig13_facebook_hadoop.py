"""Fig. 13: Facebook Hadoop TM-H, sampled vs shuffled placement

Regenerates the paper artifact '`fig13`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_fig13(run_paper_experiment):
    run_paper_experiment("fig13")
