"""Perf benchmark for the fluid simulator (repro.sim).

Two measurements, written to ``BENCH_sim.json`` at the repo root:

* **stepping** — the :class:`~repro.sim.FluidSimulation` churn loop: a
  flow population with arrivals and departures stepped to drain, reported
  as flow-steps/sec (flows active × steps taken per second).  This is the
  allocator's vectorized bottleneck search under constant re-allocation —
  a genuine stress benchmark for the compiled core.
* **engine** — cold vs warm ``sim`` solves through the ambient
  :class:`~repro.batch.solver.BatchSolver`: cold pays route compilation +
  allocation per instance, the warm rerun must answer every instance from
  the result cache without a single solve.

Assertions are deliberately loose (warm must beat cold; the stepping loop
must actually churn); the JSON carries the real numbers.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.batch import BatchSolver, SolveRequest
from repro.batch.cache import ResultCache
from repro.sim import FluidSimulation
from repro.topologies.jellyfish import jellyfish
from repro.traffic import all_to_all
from repro.utils.rng import ensure_rng

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_sim.json"

N_SWITCHES = 32
DEGREE = 6
REPEATS = 3


def _median_seconds(fn, repeats: int = REPEATS) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def _churn_loop(topo) -> tuple:
    """One arrival/departure episode; returns (flow_steps, steps)."""
    sim = FluidSimulation(topo, link_delay=0.5)
    rng = ensure_rng(7)
    pairs = [
        (int(a), int(b))
        for a, b in rng.integers(0, topo.n_switches, size=(40, 2))
        if a != b
    ]
    flow_steps = 0
    for i, (src, dst) in enumerate(pairs):
        sim.add_flow(src, dst, volume=1.0 + (i % 5))
        if i % 4 == 3:  # arrivals interleaved with stepping
            flow_steps += sim.n_active * 2
            sim.step(0.25)
            sim.step(0.25)
    while sim.n_active:
        flow_steps += sim.n_active
        sim.step(0.25)
        if sim.steps > 10_000:  # pragma: no cover - safety valve
            raise RuntimeError("churn loop failed to drain")
    return flow_steps, sim.steps


def test_sim_stepping_and_engine_cache(tmp_path):
    topo = jellyfish(N_SWITCHES, DEGREE, seed=0)
    ag = topo.compile()

    # --- stepping rate -------------------------------------------------
    flow_steps, n_steps = _churn_loop(topo)
    step_s = _median_seconds(lambda: _churn_loop(topo))
    assert flow_steps > 0 and n_steps > 10

    # --- engine: cold vs warm through the batch layer ------------------
    tms = [all_to_all(topo)]
    for k in (1, 2, 4):
        from repro.traffic.synthetic import random_matching

        tms.append(random_matching(topo, n_matchings=k, seed=(0, k)))

    def requests():
        return [SolveRequest(topo, tm, engine="sim") for tm in tms]

    def cold_solve():
        with BatchSolver(workers=1) as solver:
            return solver.solve_many(requests())

    cold_s = _median_seconds(cold_solve)

    cache = ResultCache(tmp_path / "cache")
    with BatchSolver(workers=1, cache=cache) as solver:
        solver.solve_many(requests())  # populate

    def warm_solve():
        with BatchSolver(workers=1, cache=cache) as solver:
            outcomes = solver.solve_many(requests())
            assert solver.stats()["solved"] == 0
            return outcomes

    warm_s = _median_seconds(warm_solve)
    warm_outcomes = warm_solve()

    record = {
        "benchmark": "sim",
        "topology": topo.name,
        "n_switches": topo.n_switches,
        "n_arcs": ag.n_arcs,
        "stepping": {
            "seconds": step_s,
            "steps": n_steps,
            "flow_steps": flow_steps,
            "flow_steps_per_sec": flow_steps / max(step_s, 1e-12),
        },
        "engine": {
            "n_instances": len(tms),
            "cold_seconds": cold_s,
            "cold_solves_per_sec": len(tms) / max(cold_s, 1e-12),
            "warm_seconds": warm_s,
            "warm_speedup_vs_cold": cold_s / max(warm_s, 1e-12),
        },
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    # Correctness anchors, loose enough that CI noise cannot flake them.
    assert all(o.ok and o.from_cache for o in warm_outcomes)
    assert all(o.result.engine == "sim" for o in warm_outcomes)
    assert warm_s < cold_s  # cached rerun must beat recomputing routes
