"""Fig. 9: Slim Fly short paths vs throughput

Regenerates the paper artifact '`fig9`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_fig9(run_paper_experiment):
    run_paper_experiment("fig9")
