"""§III-B: exact cut metrics vs worst-case throughput — error statistics.

Regenerates the paper artifact '`cut-accuracy`' at the current REPRO_SCALE
and asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_cut_accuracy(run_paper_experiment):
    run_paper_experiment("cut-accuracy")
