"""Table II: sparse-cut estimator census

Regenerates the paper artifact '`table2`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_table2(run_paper_experiment):
    run_paper_experiment("table2")
