"""Fig. 1 / Theorem 1: sparsest cut can mis-rank networks (graphs A and B)

Regenerates the paper artifact '`fig1`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_fig1(run_paper_experiment):
    run_paper_experiment("fig1")
