"""Perf benchmark for the compiled LP model cache (repro.throughput.modelcache).

Times the **assembly kernel** — the stage the skeleton cache optimizes — on
a what-if failure ensemble: 50 symmetric cable-failure overlays of one
jellyfish instance, every overlay sharing the parent's structure digest and
demand sparsity (exactly the workload the cache is keyed for).

* **cold** — the model cache disabled (``reset_model_cache(0)``): every
  scenario recompiles the constraint-matrix pattern from scratch, the
  seed-path behavior;
* **skeleton** — the cache at its default capacity: one build serves the
  whole ensemble, each assembly is a vectorized data swap on the shared
  pattern.

The headline number is ensemble **scenarios/sec** through the assembly
stage, cold vs skeleton-served, asserted >= 3x.  Bit-identity of *full
solves* across the two paths is verified alongside (same values, same
dual/usage vectors), as is build accounting (assemblies == distinct
structures, not distinct scenarios) and cache-key blindness
(``instance_key`` identical under both cache states).  Results go to
``BENCH_kernel.json`` at the repo root so the perf trajectory is recorded
run over run.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.batch import instance_key
from repro.core.arcgraph import as_arcgraph
from repro.throughput.lp import assemble_throughput_lp, solve_throughput_lp
from repro.throughput.modelcache import (
    DEFAULT_CAPACITY,
    model_cache,
    reset_model_cache,
)
from repro.topologies.jellyfish import jellyfish
from repro.traffic import all_to_all
from repro.whatif.scenarios import random_failures

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_kernel.json"

#: Ensemble shape: the whatif-smoke scale (tens of switches), 50 draws.
N_SWITCHES = 32
DEGREE = 6
N_SCENARIOS = 50
N_FAIL = 2

#: Full-solve bit-identity is verified on this many ensemble members
#: (full LPs are ~1000x the assembly cost, so not on all 50).
N_SOLVE_CHECK = 3

REQUIRED_SPEEDUP = 3.0

#: Median-of-N timing repeats for each sweep variant.
REPEATS = 5


def _median_sweep_seconds(overlays, tm, repeats: int = REPEATS) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for graph in overlays:
            assemble_throughput_lp(graph, tm)
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def test_modelcache_assembly_kernel_and_record():
    topo = jellyfish(N_SWITCHES, DEGREE, seed=0)
    ag = as_arcgraph(topo)
    tm = all_to_all(topo)
    scenarios = random_failures(ag, N_FAIL, samples=N_SCENARIOS, seed=1)
    overlays = [ag.with_caps(s.caps) for s in scenarios]

    # Cable failures are symmetric, so every overlay keeps the parent's
    # structure digest and transpose flag: ONE distinct structure.
    assert all(g.structure_digest == ag.structure_digest for g in overlays)

    key_cold_state = instance_key(ag, tm)

    # -------- cold: every scenario recompiles the pattern from scratch.
    reset_model_cache(0)
    _median_sweep_seconds(overlays, tm, repeats=1)  # warm code paths once
    reset_model_cache(0)
    cold_s = _median_sweep_seconds(overlays, tm)
    cold_stats = model_cache().stats()

    # -------- skeleton-served: one build, data swaps thereafter.
    reset_model_cache(DEFAULT_CAPACITY)
    t0 = time.perf_counter()
    assemble_throughput_lp(overlays[0], tm)  # the one real build
    build_s = time.perf_counter() - t0
    warm_s = _median_sweep_seconds(overlays, tm)
    warm_stats = model_cache().stats()

    speedup = cold_s / max(warm_s, 1e-12)

    # -------- bit-identity of full solves across the two paths.
    solve_checked = []
    for graph in overlays[:N_SOLVE_CHECK]:
        reset_model_cache(0)
        cold = solve_throughput_lp(graph, tm, want_flows=True, want_duals=True)
        reset_model_cache(DEFAULT_CAPACITY)
        solve_throughput_lp(graph, tm)  # build
        warm = solve_throughput_lp(graph, tm, want_flows=True, want_duals=True)
        assert warm.meta["skeleton"] == "hit"
        assert cold.value == warm.value
        assert np.array_equal(cold.flows, warm.flows)
        for key in ("arc_usage", "capacity_duals"):
            assert np.array_equal(cold.meta[key], warm.meta[key])
        solve_checked.append(cold.value)
    reset_model_cache(DEFAULT_CAPACITY)

    key_warm_state = instance_key(ag, tm)

    record = {
        "benchmark": "modelcache_kernel",
        "topology": topo.name,
        "n_switches": topo.n_switches,
        "n_arcs": ag.n_arcs,
        "n_scenarios": N_SCENARIOS,
        "n_fail_per_scenario": N_FAIL,
        "distinct_structures": 1,
        "cold_assembly": {
            "seconds": cold_s,
            "scenarios_per_sec": N_SCENARIOS / cold_s,
            "builds": cold_stats["builds"],
        },
        "skeleton_reuse": {
            "seconds": warm_s,
            "scenarios_per_sec": N_SCENARIOS / warm_s,
            "one_time_build_s": build_s,
            "builds": warm_stats["builds"],
            "hits": warm_stats["hits"],
            "speedup_vs_cold": speedup,
        },
        "bit_identical_full_solves": {
            "checked": len(solve_checked),
            "values": solve_checked,
        },
        "instance_key_unchanged": key_cold_state == key_warm_state,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    # The contract the PR ships: >= 3x ensemble assembly throughput, one
    # build per distinct structure (not per scenario), keys untouched.
    assert speedup >= REQUIRED_SPEEDUP, record
    assert warm_stats["builds"] == 1, warm_stats  # == distinct structures
    # Disabled cache pays a rebuild per assembly: every repeat, every
    # scenario (the per-solve cost the skeleton path amortizes away).
    assert cold_stats["builds"] == N_SCENARIOS * REPEATS, cold_stats
    assert key_cold_state == key_warm_state


def test_bench_kernel_json_is_fresh_and_passing():
    """The committed BENCH_kernel.json reflects a passing run of this file."""
    doc = json.loads(BENCH_PATH.read_text())
    assert doc["benchmark"] == "modelcache_kernel"
    assert doc["n_scenarios"] == N_SCENARIOS
    assert doc["skeleton_reuse"]["speedup_vs_cold"] >= REQUIRED_SPEEDUP
    assert doc["skeleton_reuse"]["builds"] == doc["distinct_structures"] == 1
    assert doc["instance_key_unchanged"] is True
