"""§V: routing gap — single shortest path vs ECMP vs optimal flow.

Regenerates the paper artifact '`routing-gap`' at the current REPRO_SCALE
and asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_routing_gap(run_paper_experiment):
    run_paper_experiment("routing-gap")
