"""Fig. 10: elephant-flow TMs, structured families

Regenerates the paper artifact '`fig10`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_fig10(run_paper_experiment):
    run_paper_experiment("fig10")
