"""Load benchmark for the throughput service (repro.service).

Boots a real :class:`ThroughputService` (asyncio server, real sockets) on
an ephemeral port over one shared :class:`Session` with a persistent
result cache, then drives it with the package's own load generator:

* **cold pass** — 8 concurrent clients, each its own tenant, race through
  20 distinct uploaded-ring MWU queries; every query is a real solve;
* **warm pass** — the same clients re-ask the same 20 queries three times
  over; every answer must come from the content-addressed cache with
  **zero** additional solves.

The service contract under test: N clients asking one topology cost one
solve (single-flight dedupe), warm traffic is served at cache-hit speed,
and both passes attribute per-tenant counts in ``/stats``.  Results are
written to ``BENCH_service.json`` at the repo root so the perf trajectory
is recorded run over run; the warm/cold qps ratio is asserted at the
10x floor the service story promises.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from pathlib import Path

from repro.api import Session
from repro.service import ServiceClient, ServiceConfig, ThroughputService, run_load

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_service.json"

N_CLIENTS = 8
N_DOCS = 20
WARM_REPEAT = 3


def _ring(n: int):
    dense = [[0.0] * n for _ in range(n)]
    for i in range(n):
        dense[i][(i + 1) % n] = 1.0
        dense[(i + 1) % n][i] = 1.0
    return dense


#: Twenty distinct instances, each a few hundred ms of MWU — heavy enough
#: that the cold pass is solver-bound, small enough that the whole
#: benchmark stays in CI budget.
DOCS = [
    {
        "topology": {"adjacency": _ring(n)},
        "tm": {"kind": "uniform"},
        "engine": "mwu",
        "params": {"epsilon": 0.2},
    }
    for n in range(8, 8 + N_DOCS)
]


@contextlib.contextmanager
def _serving(session: Session):
    config = ServiceConfig(host="127.0.0.1", port=0)
    box: dict = {}
    ready = threading.Event()

    def runner() -> None:
        async def main() -> None:
            service = ThroughputService(session, config)
            box["service"] = service
            box["loop"] = asyncio.get_running_loop()
            box["addr"] = await service.start()
            ready.set()
            await service.wait_drained()

        asyncio.run(main())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert ready.wait(10), "service failed to start"
    try:
        yield box["addr"][1]
    finally:
        asyncio.run_coroutine_threadsafe(
            box["service"].drain(), box["loop"]
        ).result(timeout=60)
        thread.join(timeout=10)


def test_service_cold_vs_warm_load_and_record(tmp_path):
    with Session(seed=0, workers=1, cache_dir=tmp_path / "cache") as session:
        with _serving(session) as port:
            cold = run_load(
                "127.0.0.1", port, DOCS, n_clients=N_CLIENTS,
                tenant_prefix="cold",
            )
            with ServiceClient(port=port) as probe:
                solved_before_warm = probe.stats()["solver"]["solved"]
            warm = run_load(
                "127.0.0.1", port, DOCS, n_clients=N_CLIENTS,
                repeat=WARM_REPEAT, tenant_prefix="warm",
            )
            with ServiceClient(port=port) as probe:
                stats = probe.stats()

    solver = stats["solver"]
    warm_solves = solver["solved"] - solved_before_warm
    speedup = warm["qps"] / max(cold["qps"], 1e-12)
    warm_tenants = {
        t: c for t, c in stats["cache"]["tenants"].items()
        if t.startswith("warm-")
    }

    record = {
        "benchmark": "service-load",
        "clients": N_CLIENTS,
        "distinct_queries": N_DOCS,
        "warm_repeat": WARM_REPEAT,
        "cold": {
            "seconds": cold["seconds"],
            "qps": cold["qps"],
            "latency": cold["latency"],
            "errors": cold["errors"],
        },
        "warm": {
            "seconds": warm["seconds"],
            "qps": warm["qps"],
            "latency": warm["latency"],
            "errors": warm["errors"],
            "solves": warm_solves,
            "from_cache": warm["from_cache"],
            "speedup_vs_cold": speedup,
        },
        "solver": {
            "requests": solver["requests"],
            "solved": solver["solved"],
            "cache_hits": solver["cache_hits"],
            "errors": solver["errors"],
        },
        "per_tenant_warm_hits": {
            t: c["hits"] for t, c in sorted(warm_tenants.items())
        },
        "admission": stats["service"]["admission"],
        "instance_cache": stats["service"]["instance_cache"],
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    # Contract anchors (the JSON carries the real numbers).
    assert cold["errors"] == 0 and warm["errors"] == 0
    assert cold["queries"] == N_DOCS
    assert warm["queries"] == N_DOCS * WARM_REPEAT
    # Cold pass: every distinct instance solved exactly once, even with 8
    # clients racing (single-flight dedupe would collapse duplicates).
    assert solver["solved"] == N_DOCS
    # Warm pass: zero solves — all answers from the content-addressed cache.
    assert warm_solves == 0
    assert warm["from_cache"] == warm["queries"]
    # The headline: warm traffic is at least 10x cold throughput.
    assert speedup >= 10.0, (
        f"warm qps {warm['qps']:.1f} is only {speedup:.1f}x cold "
        f"{cold['qps']:.1f}"
    )
    # Every warm client shows up in the per-tenant cache attribution.
    assert set(warm_tenants) == {f"warm-{i}" for i in range(N_CLIENTS)}
    assert sum(c["hits"] for c in warm_tenants.values()) == warm["queries"]
