"""Fig. 7: HyperX relative throughput by designed bisection

Regenerates the paper artifact '`fig7`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_fig7(run_paper_experiment):
    run_paper_experiment("fig7")
