"""Fig. 11: elephant-flow TMs, expander families

Regenerates the paper artifact '`fig11`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_fig11(run_paper_experiment):
    run_paper_experiment("fig11")
