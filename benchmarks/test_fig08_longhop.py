"""Fig. 8: Long Hop relative throughput approaches the random graph

Regenerates the paper artifact '`fig8`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_fig8(run_paper_experiment):
    run_paper_experiment("fig8")
