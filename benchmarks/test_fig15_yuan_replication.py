"""Fig. 15: Yuan et al. replication (estimator + equipment effects)

Regenerates the paper artifact '`fig15`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_fig15(run_paper_experiment):
    run_paper_experiment("fig15")
