"""Fig. 3: throughput vs best-heuristic sparse cut, all families + natural networks

Regenerates the paper artifact '`fig3`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_fig3(run_paper_experiment):
    run_paper_experiment("fig3")
