"""Fig. 4: A2A/RM(5)/RM(1)/LM normalized by the Theorem-2 lower bound

Regenerates the paper artifact '`fig4`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_fig4(run_paper_experiment):
    run_paper_experiment("fig4")
