"""§III-B: 25-switch flattened butterfly, cut != throughput

Regenerates the paper artifact '`butterfly25`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_butterfly25(run_paper_experiment):
    run_paper_experiment("butterfly25")
