"""Fig. 5: relative throughput vs servers (structured families)

Regenerates the paper artifact '`fig5`' at the current REPRO_SCALE and
asserts its shape checks (see DESIGN.md section 5 and EXPERIMENTS.md).
"""


def test_fig5(run_paper_experiment):
    run_paper_experiment("fig5")
