"""Perf benchmark for the what-if engine (repro.whatif).

Times one scenario sweep (random failures + maintenance windows + uniform
degradations on a jellyfish instance) three ways:

* **cold** — every scenario solved from scratch, no hints, no cache (the
  seed behavior: a full LP per perturbed instance);
* **warm** — the engine path: one parent solve with duals, every child
  warm-started from the parent hint, degradations answered by the bound
  alone (no LP);
* **cached rerun** — the same sweep against a populated result cache:
  zero solves, the steady-state cost of re-asking a what-if question.

Results (medians, scenarios/sec, bound-skip counts) are written to
``BENCH_whatif.json`` at the repo root so the perf trajectory is recorded
run over run.  Assertions are deliberately loose (the warm path must not
be dramatically slower than cold, the cached rerun must not solve); the
JSON carries the real numbers.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.batch import BatchSolver, SolveRequest
from repro.batch.cache import ResultCache
from repro.throughput import solve_throughput_lp
from repro.topologies.jellyfish import jellyfish
from repro.traffic import all_to_all
from repro.whatif import (
    maintenance_windows,
    random_failures,
    uniform_degradation,
    whatif_sweep,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_whatif.json"

N_SWITCHES = 32
DEGREE = 6
REPEATS = 3


def _median_seconds(fn, repeats: int = REPEATS) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def test_whatif_cold_warm_bound_and_record(tmp_path):
    topo = jellyfish(N_SWITCHES, DEGREE, seed=0)
    tm = all_to_all(topo)
    ag = topo.compile()
    scenarios = (
        uniform_degradation(topo, factors=(0.9, 0.75, 0.5))
        + random_failures(topo, n_fail=3, samples=4, seed=0)
        + maintenance_windows(topo, n_windows=4, drain=0.5)
    )

    def cold_sweep():
        # Seed behavior: one independent full LP per scenario, plus the
        # baseline — no duals, no hints, no cache.
        values = [solve_throughput_lp(topo, tm).value]
        values += [
            solve_throughput_lp(ag.with_caps(s.caps), tm).value
            for s in scenarios
        ]
        return values

    def warm_sweep():
        with BatchSolver(workers=1) as solver:
            return whatif_sweep(topo, tm, scenarios, solver=solver)

    cold_s = _median_seconds(cold_sweep)
    warm_s = _median_seconds(warm_sweep)
    warm_report = warm_sweep()

    cache = ResultCache(tmp_path / "cache")
    with BatchSolver(workers=1, cache=cache) as solver:
        whatif_sweep(topo, tm, scenarios, solver=solver)  # populate

    def cached_sweep():
        with BatchSolver(workers=1, cache=cache) as solver:
            report = whatif_sweep(topo, tm, scenarios, solver=solver)
        assert report.stats["solved"] == 0
        return report

    cached_s = _median_seconds(cached_sweep)
    cached_report = cached_sweep()

    n = len(scenarios)
    record = {
        "benchmark": "whatif",
        "topology": topo.name,
        "n_switches": topo.n_switches,
        "n_arcs": ag.n_arcs,
        "n_scenarios": n,
        "cold": {
            "seconds": cold_s,
            "scenarios_per_sec": n / max(cold_s, 1e-12),
        },
        "warm": {
            "seconds": warm_s,
            "scenarios_per_sec": n / max(warm_s, 1e-12),
            "skipped_by_bound": warm_report.n_skipped_by_bound,
            "solved": warm_report.stats["solved"],
            "speedup_vs_cold": cold_s / max(warm_s, 1e-12),
        },
        "cached_rerun": {
            "seconds": cached_s,
            "scenarios_per_sec": n / max(cached_s, 1e-12),
            "solved": cached_report.stats["solved"],
            "cache_hits": cached_report.stats["cache_hits"],
            "skipped_by_bound": cached_report.stats["skipped_by_bound"],
            "speedup_vs_cold": cold_s / max(cached_s, 1e-12),
        },
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    # Correctness anchors, loose enough that CI noise cannot flake them.
    assert warm_report.n_skipped_by_bound >= 3  # all uniform degradations
    assert cached_report.stats["solved"] == 0
    assert cached_s < cold_s  # a cached rerun must beat solving everything
    # The bound-skipped degradations are exact homogeneous scalings.
    by_name = {o.name: o for o in warm_report.outcomes}
    for f in (0.9, 0.75, 0.5):
        assert abs(by_name[f"degrade/{f:g}"].relative - f) < 1e-6
